//! Benchmark-suite composition reproducing the paper's Table II.
//!
//! Each application is a module whose loop count matches the paper
//! exactly (BT 184 … nqueens 4, total 840). Kernel mixes follow the
//! paper's characterisation (§IV-D): NPB is DoALL-heavy with simple
//! parallelism, PolyBench is polyhedral loop nests with strong structure,
//! BOTS is recursive task parallelism.

use crate::kernels::{build_kernel, KernelKind, PatternKind};
use mvgnn_ir::module::{FuncId, LoopId, Module};
use mvgnn_ir::FunctionBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Benchmark suite identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// NAS Parallel Benchmarks.
    Npb,
    /// PolyBench.
    PolyBench,
    /// Barcelona OpenMP Tasks Suite.
    Bots,
    /// Adversarial stress suite (not in the paper): indirect access,
    /// pointer chasing, skewed iteration spaces and long-distance
    /// carried dependences, built to break static provers and learned
    /// models alike. Opt-in only: `generate_suite(None, …)` and the
    /// historic corpora exclude it.
    Stress,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Npb => write!(f, "NPB"),
            Suite::PolyBench => write!(f, "PolyBench"),
            Suite::Bots => write!(f, "BOTS"),
            Suite::Stress => write!(f, "Stress"),
        }
    }
}

/// One application's spec (a row of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppSpec {
    /// Application name as the paper prints it.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Number of for-loops (Table II).
    pub loops: usize,
}

/// The paper's Table II, verbatim.
pub const TABLE2: [AppSpec; 14] = [
    AppSpec { name: "BT", suite: Suite::Npb, loops: 184 },
    AppSpec { name: "SP", suite: Suite::Npb, loops: 252 },
    AppSpec { name: "LU", suite: Suite::Npb, loops: 173 },
    AppSpec { name: "IS", suite: Suite::Npb, loops: 25 },
    AppSpec { name: "EP", suite: Suite::Npb, loops: 10 },
    AppSpec { name: "CG", suite: Suite::Npb, loops: 32 },
    AppSpec { name: "MG", suite: Suite::Npb, loops: 74 },
    AppSpec { name: "FT", suite: Suite::Npb, loops: 37 },
    AppSpec { name: "2mm", suite: Suite::PolyBench, loops: 17 },
    AppSpec { name: "jacobi-2d", suite: Suite::PolyBench, loops: 10 },
    AppSpec { name: "syr2k", suite: Suite::PolyBench, loops: 11 },
    AppSpec { name: "trmm", suite: Suite::PolyBench, loops: 9 },
    AppSpec { name: "fib", suite: Suite::Bots, loops: 2 },
    AppSpec { name: "nqueens", suite: Suite::Bots, loops: 4 },
];

/// The adversarial stress applications ([`Suite::Stress`]). Kept apart
/// from [`TABLE2`] so every historic corpus (suite `None` or a paper
/// suite) is byte-identical to before the stress suite existed.
pub const STRESS: [AppSpec; 4] = [
    AppSpec { name: "gather-x", suite: Suite::Stress, loops: 24 },
    AppSpec { name: "chase-x", suite: Suite::Stress, loops: 18 },
    AppSpec { name: "skew-x", suite: Suite::Stress, loops: 20 },
    AppSpec { name: "pipe-x", suite: Suite::Stress, loops: 18 },
];

/// Weighted kernel menu for a suite: `(template, weight)`.
fn menu(suite: Suite) -> Vec<(KernelKind, u32)> {
    use KernelKind::*;
    match suite {
        // NPB: DoALL-dominated solver/spectral/sorting kernels with some
        // reductions and occasional serial recurrences (Table IV shows
        // ~93% of its loops are parallelisable).
        Suite::Npb => vec![
            (VectorMap, 20),
            (Triad, 16),
            (Stencil3, 12),
            (Jacobi2d, 8),
            (MatVec, 8),
            (Transpose, 6),
            (FirFilter, 6),
            (SumReduction, 8),
            (DotProduct, 6),
            (MaxReduction, 4),
            (Histogram, 3),
            (IndirectGather, 3),
            (PrefixSum, 2),
            (Recurrence, 2),
            (ScatterConflict, 1),
            (CallDoAll, 5),
            (TinyDoAll, 3),
            (ScalarSumReduction, 5),
            (NonCommutativeScalar, 4),
            (DistanceRecurrence, 2),
            (GuardedReduction, 3),
            (ScatterPermutation, 3),
            (GuardedScatter, 3),
        ],
        // PolyBench: polyhedral nests — dense linear algebra and stencils,
        // stronger structural signal, more serial nests (Pluto's home turf).
        Suite::PolyBench => vec![
            (MatMul, 14),
            (MatVec, 8),
            (Jacobi2d, 12),
            (Transpose, 8),
            (TriangularSolve, 5),
            (GaussSeidel, 4),
            (Stencil3, 6),
            (TinyDoAll, 3),
            (Stencil3InPlace, 3),
            (DotProduct, 2),
            (DistanceRecurrence, 3),
            (GuardedReduction, 1),
            (ScalarSumReduction, 1),
            (NonCommutativeScalar, 2),
            (GuardedScatter, 2),
        ],
        // BOTS: recursive task parallelism plus small helper loops.
        Suite::Bots => vec![
            (TaskSpawn, 6),
            (CallDoAll, 3),
            (VectorMap, 4),
            (TinyDoAll, 2),
            (ScalarSumReduction, 3),
            (NonCommutativeScalar, 2),
            (Recurrence, 2),
        ],
        // Stress: the four adversarial families dominate, with a thin
        // slice of regular kernels so both binary labels stay populated.
        Suite::Stress => vec![
            (IndirectGatherReduction, 6),
            (PointerChase, 5),
            (TriangularCopy, 6),
            (MultiDistanceRecurrence, 5),
            (IndirectGather, 3),
            (ScatterConflict, 2),
            (ScatterPermutation, 2),
            (GuardedScatter, 2),
            (Histogram, 3),
            (TriangularSolve, 3),
            (DistanceRecurrence, 3),
            (VectorMap, 4),
            (SumReduction, 3),
            (Stencil3InPlace, 2),
        ],
    }
}

/// One generated application with ground truth per loop.
#[derive(Debug)]
pub struct GeneratedApp {
    /// Spec used to generate it.
    pub spec: AppSpec,
    /// The generated module (one function per kernel + `main` driver).
    pub module: Module,
    /// Driver entry point calling every kernel once.
    pub entry: FuncId,
    /// Every loop with its ground-truth pattern.
    pub loops: Vec<(FuncId, LoopId, PatternKind)>,
    /// The template that generated each loop (parallel to `loops`);
    /// `KernelKind::trace_limited` marks loops whose profiled verdict
    /// legitimately disagrees with the expert label.
    pub loop_kinds: Vec<KernelKind>,
}

impl GeneratedApp {
    /// Number of parallelisable loops under ground truth.
    pub fn parallelizable_count(&self) -> usize {
        self.loops.iter().filter(|(_, _, p)| p.is_parallelizable()).count()
    }
}

/// Generate one application matching `spec.loops` exactly.
pub fn generate_app(spec: AppSpec, seed: u64) -> GeneratedApp {
    let mut rng = StdRng::seed_from_u64(seed ^ fxhash(spec.name));
    let menu = menu(spec.suite);
    let total_weight: u32 = menu.iter().map(|&(_, w)| w).sum();
    let mut module = Module::new(spec.name);
    let mut loops: Vec<(FuncId, LoopId, PatternKind)> = Vec::new();
    let mut loop_kinds: Vec<KernelKind> = Vec::new();
    let mut kernel_funcs: Vec<FuncId> = Vec::new();
    let mut idx = 0usize;

    while loops.len() < spec.loops {
        let remaining = spec.loops - loops.len();
        // BOTS apps always lead with a task-spawning loop — the defining
        // trait of the suite.
        if spec.suite == Suite::Bots && loops.is_empty() {
            let (func, ls) = build_kernel(&mut module, KernelKind::TaskSpawn, idx, 12, &mut rng);
            idx += 1;
            kernel_funcs.push(func);
            for (l, p) in ls {
                loops.push((func, l, p));
                loop_kinds.push(KernelKind::TaskSpawn);
            }
            continue;
        }
        // Draw until the template fits in the remaining budget.
        let kind = loop {
            let mut roll = rng.random_range(0..total_weight);
            let mut picked = menu[0].0;
            for &(k, w) in &menu {
                if roll < w {
                    picked = k;
                    break;
                }
                roll -= w;
            }
            if picked.loop_count() <= remaining {
                break picked;
            }
            // Budget nearly exhausted: force a single-loop template.
            if remaining == 1 {
                break KernelKind::VectorMap;
            }
        };
        let size = rng.random_range(8..=24);
        let (func, ls) = build_kernel(&mut module, kind, idx, size, &mut rng);
        idx += 1;
        kernel_funcs.push(func);
        for (l, p) in ls {
            loops.push((func, l, p));
            loop_kinds.push(kind);
        }
    }
    debug_assert_eq!(loops.len(), spec.loops);
    debug_assert_eq!(loops.len(), loop_kinds.len());

    // Driver calling every kernel so one profiled run covers all loops.
    let entry = {
        let mut b = FunctionBuilder::new(&mut module, "main", 0);
        for f in &kernel_funcs {
            b.call_void(*f, &[]);
            b.next_line();
        }
        b.ret(None);
        b.finish()
    };
    GeneratedApp { spec, module, entry, loops, loop_kinds }
}

/// Generate every application of a suite. `None` means "the paper's
/// corpus": all of [`TABLE2`], *excluding* the opt-in [`STRESS`] apps,
/// so historic corpora are unchanged by the stress suite's existence.
pub fn generate_suite(suite: Option<Suite>, seed: u64) -> Vec<GeneratedApp> {
    TABLE2
        .iter()
        .chain(STRESS.iter())
        .filter(|s| match suite {
            None => s.suite != Suite::Stress,
            Some(want) => s.suite == want,
        })
        .map(|&s| generate_app(s, seed))
        .collect()
}

/// Tiny deterministic string hash (per-app seed derivation).
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_ir::verify::verify_module;
    use mvgnn_profiler::profile_module;

    #[test]
    fn table2_totals_840() {
        let total: usize = TABLE2.iter().map(|s| s.loops).sum();
        assert_eq!(total, 840);
        assert_eq!(TABLE2.iter().filter(|s| s.suite == Suite::Npb).count(), 8);
        assert_eq!(TABLE2.iter().filter(|s| s.suite == Suite::PolyBench).count(), 4);
        assert_eq!(TABLE2.iter().filter(|s| s.suite == Suite::Bots).count(), 2);
    }

    #[test]
    fn stress_suite_is_opt_in_and_covers_every_family() {
        use crate::kernels::KernelFamily;
        // `None` (the historic corpus) must not pick up stress apps.
        let default = generate_suite(None, 7);
        assert_eq!(default.len(), TABLE2.len());
        assert!(default.iter().all(|a| a.spec.suite != Suite::Stress));
        // The stress suite itself covers all five families.
        let stress = generate_suite(Some(Suite::Stress), 7);
        assert_eq!(stress.len(), STRESS.len());
        let families: std::collections::HashSet<KernelFamily> = stress
            .iter()
            .flat_map(|a| a.loop_kinds.iter().map(|k| k.family()))
            .collect();
        for fam in KernelFamily::ALL {
            assert!(families.contains(&fam), "{fam}: missing from stress corpus");
        }
    }

    #[test]
    fn stress_apps_profile_end_to_end() {
        for spec in STRESS {
            let app = generate_app(spec, 5);
            assert_eq!(app.loops.len(), spec.loops, "{}", spec.name);
            verify_module(&app.module).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let res = profile_module(&app.module, app.entry, &[]).unwrap();
            for (f, l, _) in &app.loops {
                let rt = res
                    .loops
                    .get(&(*f, *l))
                    .unwrap_or_else(|| panic!("{}: loop {l:?} of f{} never ran", spec.name, f.0));
                assert!(rt.iterations > 0);
            }
        }
    }

    #[test]
    fn generated_apps_match_loop_counts() {
        for spec in [TABLE2[3], TABLE2[4], TABLE2[8], TABLE2[12], TABLE2[13]] {
            let app = generate_app(spec, 7);
            assert_eq!(app.loops.len(), spec.loops, "{}", spec.name);
            assert_eq!(app.module.loop_count(), spec.loops, "{}", spec.name);
            verify_module(&app.module).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn generated_app_profiles_end_to_end() {
        // EP is the smallest NPB app (10 loops): run the whole driver.
        let spec = TABLE2[4];
        let app = generate_app(spec, 11);
        let res = profile_module(&app.module, app.entry, &[]).unwrap();
        // Every generated loop must have executed at least one iteration.
        for (f, l, _) in &app.loops {
            let rt = res
                .loops
                .get(&(*f, *l))
                .unwrap_or_else(|| panic!("loop {l:?} of f{} never ran", f.0));
            assert!(rt.iterations > 0);
        }
    }

    #[test]
    fn npb_is_mostly_parallelizable() {
        let app = generate_app(TABLE2[3], 3); // IS, 25 loops
        let frac = app.parallelizable_count() as f64 / app.loops.len() as f64;
        assert!(frac > 0.75, "NPB-like app should be DoALL-heavy, got {frac}");
    }

    #[test]
    fn bots_apps_contain_task_loops() {
        let app = generate_app(TABLE2[12], 3); // fib, 2 loops
        assert_eq!(app.loops.len(), 2);
        let has_task = app.loops.iter().any(|(_, _, p)| *p == PatternKind::Task);
        assert!(has_task, "BOTS app should contain a task loop: {:?}", app.loops);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_app(TABLE2[5], 42);
        let b = generate_app(TABLE2[5], 42);
        assert_eq!(a.loops.len(), b.loops.len());
        let pa: Vec<_> = a.loops.iter().map(|(_, _, p)| *p).collect();
        let pb: Vec<_> = b.loops.iter().map(|(_, _, p)| *p).collect();
        assert_eq!(pa, pb);
        assert_eq!(a.module.inst_count(), b.module.inst_count());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_app(TABLE2[5], 1);
        let b = generate_app(TABLE2[5], 2);
        let pa: Vec<_> = a.loops.iter().map(|(_, _, p)| *p).collect();
        let pb: Vec<_> = b.loops.iter().map(|(_, _, p)| *p).collect();
        assert!(pa != pb || a.module.inst_count() != b.module.inst_count());
    }
}
