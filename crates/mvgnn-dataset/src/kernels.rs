//! Loop kernel templates with constructive parallelism labels.
//!
//! Each template builds one function (own arrays, arity 0) inside a
//! module and reports every loop it created together with the pattern it
//! instantiates. The labels are *constructive*: a template that claims
//! `Serial` provably writes a cell another iteration reads.

use mvgnn_ir::inst::BinOp;
use mvgnn_ir::module::{FuncId, LoopId, Module};
use mvgnn_ir::types::Ty;
use mvgnn_ir::FunctionBuilder;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Ground-truth pattern of one generated loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    /// Iterations fully independent.
    DoAll,
    /// Carried dependence is a recognisable reduction.
    Reduction,
    /// Order-sensitive carried dependence — not parallelisable.
    Serial,
    /// Independent recursive tasks (BOTS style) — parallelisable.
    Task,
}

impl PatternKind {
    /// The paper's binary label.
    pub fn is_parallelizable(self) -> bool {
        !matches!(self, PatternKind::Serial)
    }
}

/// Available kernel templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// `b[i] = f(a[i])` — elementwise map (1 loop, DoAll).
    VectorMap,
    /// `c[i] = a[i] + s·b[i]` — triad (1 loop, DoAll).
    Triad,
    /// `s += a[i]·b[i]` — dot product (1 loop, Reduction).
    DotProduct,
    /// `s += a[i]` (1 loop, Reduction).
    SumReduction,
    /// `s = max(s, a[i])` (1 loop, Reduction).
    MaxReduction,
    /// `b[i] = a[i−1] + a[i] + a[i+1]` out-of-place (1 loop, DoAll).
    Stencil3,
    /// `a[i] = a[i−1] + a[i+1]` in place (1 loop, Serial).
    Stencil3InPlace,
    /// `b[i] = b[i−1] + a[i]` (1 loop, Serial).
    PrefixSum,
    /// `x[i] = α·x[i−1] + β` (1 loop, Serial).
    Recurrence,
    /// `y[i] = Σⱼ A[i][j]·x[j]` (2 loops: DoAll outer, Reduction inner).
    MatVec,
    /// `C = A·B` (3 loops: DoAll, DoAll, Reduction).
    MatMul,
    /// One Jacobi sweep on a 2-D grid, out of place (2 loops, DoAll).
    Jacobi2d,
    /// One Gauss-Seidel sweep in place (2 loops, Serial).
    GaussSeidel,
    /// `hist[key[i]] += 1` (2 loops: init DoAll + Reduction).
    Histogram,
    /// `b[i] = a[idx[i]]` (2 loops: init DoAll + gather DoAll).
    IndirectGather,
    /// `a[idx[i]] = b[i]` with colliding indices (2 loops: init DoAll +
    /// scatter Serial).
    ScatterConflict,
    /// FIR filter: window reads, disjoint writes (1 loop, DoAll).
    FirFilter,
    /// Matrix transpose (2 loops, DoAll).
    Transpose,
    /// Forward substitution on a lower-triangular system
    /// (3 loops: DoAll init, Serial outer, Reduction inner).
    TriangularSolve,
    /// Driver loop spawning recursive `fib` tasks into disjoint slots
    /// (1 loop, Task; adds a callee function).
    TaskSpawn,
    /// `out[i] = f(a[i])` through a *pure helper call* (1 loop, DoAll).
    /// Parallel, but call-averse tools reject it.
    CallDoAll,
    /// A DOALL map with trip count 2 (1 loop, DoAll). Parallel, but
    /// profitability filters reject it.
    TinyDoAll,
    /// `acc += a[i]` in a register accumulator (1 loop, Reduction).
    ScalarSumReduction,
    /// `acc = acc − a[i]·acc` in a register (1 loop, Serial): identical
    /// dynamic-feature signature to [`KernelKind::ScalarSumReduction`],
    /// separable only by opcode/structure.
    NonCommutativeScalar,
    /// `a[i] = a[i−4] + 1` — carried RAW at distance 4 (1 loop, Serial).
    DistanceRecurrence,
    /// `if (i odd) s[0] += a[i]` — control-guarded reduction
    /// (1 loop, Reduction).
    GuardedReduction,
    /// `dst[perm[i]] = src[i]` where `perm` is a runtime permutation
    /// (2 loops: init DoAll + scatter DoAll). Parallel, but statically
    /// unprovable.
    ScatterPermutation,
    /// `dst[key[i] < t ? i : 0] = src[i]` — a scatter whose collision is
    /// *input-dependent* (1 loop, Serial). The profiled input exercises
    /// only the collision-free branch, so trace-based tools report a
    /// parallelisable loop — the expert annotation (ground truth) says
    /// no. This is the paper's "missing expert annotation"/unsound-trace
    /// error class, and it is [`KernelKind::trace_limited`].
    GuardedScatter,
    /// `s[0] += a[idx[i]]` — a reduction over an indirectly gathered
    /// operand (2 loops: init DoAll + Reduction). The chain cell is
    /// affine, but the gathered read is subscript-of-subscript, so a
    /// sound static tool must keep the reduction claim while refusing
    /// to reason about `a`.
    IndirectGatherReduction,
    /// Linked-list walk `p = next[p]` through a pointer cell
    /// (2 loops: init DoAll + non-counted walk Serial). The walk has
    /// no induction register at all — the hostile case for counted
    /// loop analyses.
    PointerChase,
    /// `out[i·n+j] = a[j·n+i]` over the strictly lower triangle
    /// (2 loops, DoAll + DoAll): a skewed iteration space whose inner
    /// bound is the outer induction variable.
    TriangularCopy,
    /// `a[i] = a[i−2] + a[i−5]` — carried RAW at two distances > 1
    /// (1 loop, Serial). Not DOALL, but provably a pipeline
    /// (DOACROSS) at distance 2.
    MultiDistanceRecurrence,
}

/// Coarse stress-family taxonomy over kernel templates. Families group
/// kernels by the *mechanism* that makes them hard for static provers
/// and learned models, so per-family metrics stay visible instead of
/// being averaged away (see the `patterns` bench bin).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum KernelFamily {
    /// Dense affine kernels — the classic, mostly decidable core.
    Regular,
    /// Subscript-of-subscript (`a[idx[i]]`) gathers and scatters.
    Indirect,
    /// Pointer-chasing list walks with no induction register.
    PointerChase,
    /// Triangular / skewed iteration spaces.
    Triangular,
    /// Loop-carried dependences at distance > 1.
    LongDistance,
}

impl KernelFamily {
    /// Stable lowercase name used in reports and JSON keys.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelFamily::Regular => "regular",
            KernelFamily::Indirect => "indirect",
            KernelFamily::PointerChase => "pointer_chase",
            KernelFamily::Triangular => "triangular",
            KernelFamily::LongDistance => "long_distance",
        }
    }

    /// Every family, in on-disk tag order (see `mvgnn-dataset::format`).
    pub const ALL: [KernelFamily; 5] = [
        KernelFamily::Regular,
        KernelFamily::Indirect,
        KernelFamily::PointerChase,
        KernelFamily::Triangular,
        KernelFamily::LongDistance,
    ];
}

impl std::fmt::Display for KernelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl KernelKind {
    /// Number of loops this template creates.
    pub fn loop_count(self) -> usize {
        match self {
            KernelKind::VectorMap
            | KernelKind::Triad
            | KernelKind::DotProduct
            | KernelKind::SumReduction
            | KernelKind::MaxReduction
            | KernelKind::Stencil3
            | KernelKind::Stencil3InPlace
            | KernelKind::PrefixSum
            | KernelKind::Recurrence
            | KernelKind::FirFilter
            | KernelKind::TaskSpawn
            | KernelKind::CallDoAll
            | KernelKind::TinyDoAll
            | KernelKind::ScalarSumReduction
            | KernelKind::NonCommutativeScalar
            | KernelKind::DistanceRecurrence
            | KernelKind::GuardedReduction
            | KernelKind::GuardedScatter
            | KernelKind::MultiDistanceRecurrence => 1,
            KernelKind::MatVec
            | KernelKind::Jacobi2d
            | KernelKind::GaussSeidel
            | KernelKind::Histogram
            | KernelKind::IndirectGather
            | KernelKind::ScatterConflict
            | KernelKind::Transpose
            | KernelKind::ScatterPermutation
            | KernelKind::IndirectGatherReduction
            | KernelKind::PointerChase
            | KernelKind::TriangularCopy => 2,
            KernelKind::MatMul | KernelKind::TriangularSolve => 3,
        }
    }

    /// Pattern of each loop, outermost first (order of creation).
    pub fn patterns(self) -> Vec<PatternKind> {
        use PatternKind::*;
        match self {
            KernelKind::VectorMap | KernelKind::Triad | KernelKind::Stencil3 | KernelKind::FirFilter => {
                vec![DoAll]
            }
            KernelKind::DotProduct | KernelKind::SumReduction | KernelKind::MaxReduction => {
                vec![Reduction]
            }
            KernelKind::Stencil3InPlace | KernelKind::PrefixSum | KernelKind::Recurrence => {
                vec![Serial]
            }
            KernelKind::MatVec => vec![DoAll, Reduction],
            KernelKind::MatMul => vec![DoAll, DoAll, Reduction],
            KernelKind::Jacobi2d => vec![DoAll, DoAll],
            KernelKind::GaussSeidel => vec![Serial, Serial],
            KernelKind::Histogram | KernelKind::IndirectGatherReduction => {
                vec![DoAll, Reduction]
            }
            KernelKind::IndirectGather => vec![DoAll, DoAll],
            KernelKind::ScatterConflict | KernelKind::PointerChase => vec![DoAll, Serial],
            KernelKind::Transpose | KernelKind::TriangularCopy => vec![DoAll, DoAll],
            KernelKind::TriangularSolve => vec![DoAll, Serial, Reduction],
            KernelKind::TaskSpawn => vec![Task],
            KernelKind::CallDoAll | KernelKind::TinyDoAll => vec![DoAll],
            KernelKind::ScalarSumReduction | KernelKind::GuardedReduction => vec![Reduction],
            KernelKind::NonCommutativeScalar
            | KernelKind::DistanceRecurrence
            | KernelKind::GuardedScatter
            | KernelKind::MultiDistanceRecurrence => vec![Serial],
            KernelKind::ScatterPermutation => vec![DoAll, DoAll],
        }
    }

    /// Every template, for enumeration in tests and sweeps.
    /// True when the single profiled input cannot witness the loop's
    /// worst-case dependence: the dynamic classifier will disagree with
    /// the constructive label by design.
    pub fn trace_limited(self) -> bool {
        matches!(self, KernelKind::GuardedScatter)
    }

    /// The stress family this template belongs to.
    pub fn family(self) -> KernelFamily {
        match self {
            KernelKind::Histogram
            | KernelKind::IndirectGather
            | KernelKind::ScatterConflict
            | KernelKind::ScatterPermutation
            | KernelKind::GuardedScatter
            | KernelKind::IndirectGatherReduction => KernelFamily::Indirect,
            KernelKind::PointerChase => KernelFamily::PointerChase,
            KernelKind::TriangularSolve | KernelKind::TriangularCopy => {
                KernelFamily::Triangular
            }
            KernelKind::DistanceRecurrence | KernelKind::MultiDistanceRecurrence => {
                KernelFamily::LongDistance
            }
            _ => KernelFamily::Regular,
        }
    }

    pub const ALL: [KernelKind; 32] = [
        KernelKind::VectorMap,
        KernelKind::Triad,
        KernelKind::DotProduct,
        KernelKind::SumReduction,
        KernelKind::MaxReduction,
        KernelKind::Stencil3,
        KernelKind::Stencil3InPlace,
        KernelKind::PrefixSum,
        KernelKind::Recurrence,
        KernelKind::MatVec,
        KernelKind::MatMul,
        KernelKind::Jacobi2d,
        KernelKind::GaussSeidel,
        KernelKind::Histogram,
        KernelKind::IndirectGather,
        KernelKind::ScatterConflict,
        KernelKind::FirFilter,
        KernelKind::Transpose,
        KernelKind::TriangularSolve,
        KernelKind::TaskSpawn,
        KernelKind::CallDoAll,
        KernelKind::TinyDoAll,
        KernelKind::ScalarSumReduction,
        KernelKind::NonCommutativeScalar,
        KernelKind::DistanceRecurrence,
        KernelKind::GuardedReduction,
        KernelKind::ScatterPermutation,
        KernelKind::GuardedScatter,
        KernelKind::IndirectGatherReduction,
        KernelKind::PointerChase,
        KernelKind::TriangularCopy,
        KernelKind::MultiDistanceRecurrence,
    ];
}

/// Pick one of several equivalent arithmetic ops so variants of a
/// template differ in their token streams ("modifying the operation
/// type" augmentation).
fn jitter_op(rng: &mut StdRng) -> BinOp {
    match rng.random_range(0..4) {
        0 => BinOp::Add,
        1 => BinOp::Mul,
        2 => BinOp::Sub,
        _ => BinOp::Max,
    }
}

/// Build one kernel instance. `idx` uniquifies names, `size` scales the
/// iteration space (kept small: the profiler interprets every access).
/// Returns the kernel's function and its loops with ground truth.
pub fn build_kernel(
    module: &mut Module,
    kind: KernelKind,
    idx: usize,
    size: i64,
    rng: &mut StdRng,
) -> (FuncId, Vec<(LoopId, PatternKind)>) {
    assert!(size >= 4, "kernel size too small");
    let n = size;
    let name = |s: &str| format!("{s}_{idx}");
    let mut loops: Vec<LoopId> = Vec::new();

    let func = match kind {
        KernelKind::VectorMap => {
            let a = module.add_array(name("vm_a"), Ty::F64, n as usize);
            let out = module.add_array(name("vm_b"), Ty::F64, n as usize);
            let op = jitter_op(rng);
            let mut b = FunctionBuilder::new(module, name("vector_map"), 0);
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let x = b.load(a, iv);
                let y = b.bin(op, x, x);
                b.store(out, iv, y);
            });
            loops.push(l);
            b.ret(None);
            b.finish()
        }
        KernelKind::Triad => {
            let a = module.add_array(name("tr_a"), Ty::F64, n as usize);
            let c = module.add_array(name("tr_c"), Ty::F64, n as usize);
            let out = module.add_array(name("tr_o"), Ty::F64, n as usize);
            let scale = rng.random_range(0.5..2.0);
            let mut b = FunctionBuilder::new(module, name("triad"), 0);
            let s = b.const_f64(scale);
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let x = b.load(a, iv);
                let y = b.load(c, iv);
                let sy = b.bin(BinOp::Mul, s, y);
                let r = b.bin(BinOp::Add, x, sy);
                b.store(out, iv, r);
            });
            loops.push(l);
            b.ret(None);
            b.finish()
        }
        KernelKind::DotProduct => {
            let a = module.add_array(name("dp_a"), Ty::F64, n as usize);
            let c = module.add_array(name("dp_b"), Ty::F64, n as usize);
            let s = module.add_array(name("dp_s"), Ty::F64, 1);
            let mut b = FunctionBuilder::new(module, name("dot"), 0);
            let z = b.const_i64(0);
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let x = b.load(a, iv);
                let y = b.load(c, iv);
                let xy = b.bin(BinOp::Mul, x, y);
                let cur = b.load(s, z);
                let nxt = b.bin(BinOp::Add, cur, xy);
                b.store(s, z, nxt);
            });
            loops.push(l);
            b.ret(None);
            b.finish()
        }
        KernelKind::SumReduction => {
            let a = module.add_array(name("sr_a"), Ty::F64, n as usize);
            let s = module.add_array(name("sr_s"), Ty::F64, 1);
            let mut b = FunctionBuilder::new(module, name("sum"), 0);
            let z = b.const_i64(0);
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let x = b.load(a, iv);
                let cur = b.load(s, z);
                let nxt = b.bin(BinOp::Add, cur, x);
                b.store(s, z, nxt);
            });
            loops.push(l);
            b.ret(None);
            b.finish()
        }
        KernelKind::MaxReduction => {
            let a = module.add_array(name("mr_a"), Ty::F64, n as usize);
            let s = module.add_array(name("mr_s"), Ty::F64, 1);
            let mut b = FunctionBuilder::new(module, name("maxred"), 0);
            let z = b.const_i64(0);
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let x = b.load(a, iv);
                let cur = b.load(s, z);
                let nxt = b.bin(BinOp::Max, cur, x);
                b.store(s, z, nxt);
            });
            loops.push(l);
            b.ret(None);
            b.finish()
        }
        KernelKind::Stencil3 => {
            let a = module.add_array(name("st_a"), Ty::F64, (n + 2) as usize);
            let out = module.add_array(name("st_b"), Ty::F64, (n + 2) as usize);
            let mut b = FunctionBuilder::new(module, name("stencil3"), 0);
            let one = b.const_i64(1);
            let (lo, hi, st) = bounds(&mut b, 1, n + 1);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let im1 = b.bin(BinOp::Sub, iv, one);
                let ip1 = b.bin(BinOp::Add, iv, one);
                let left = b.load(a, im1);
                let mid = b.load(a, iv);
                let right = b.load(a, ip1);
                let s1 = b.bin(BinOp::Add, left, mid);
                let s2 = b.bin(BinOp::Add, s1, right);
                b.store(out, iv, s2);
            });
            loops.push(l);
            b.ret(None);
            b.finish()
        }
        KernelKind::Stencil3InPlace => {
            let a = module.add_array(name("sip_a"), Ty::F64, (n + 2) as usize);
            let mut b = FunctionBuilder::new(module, name("stencil3_inplace"), 0);
            let one = b.const_i64(1);
            let (lo, hi, st) = bounds(&mut b, 1, n + 1);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let im1 = b.bin(BinOp::Sub, iv, one);
                let ip1 = b.bin(BinOp::Add, iv, one);
                let left = b.load(a, im1);
                let right = b.load(a, ip1);
                let s = b.bin(BinOp::Add, left, right);
                b.store(a, iv, s);
            });
            loops.push(l);
            b.ret(None);
            b.finish()
        }
        KernelKind::PrefixSum => {
            let a = module.add_array(name("ps_a"), Ty::F64, n as usize);
            let out = module.add_array(name("ps_b"), Ty::F64, n as usize);
            let mut b = FunctionBuilder::new(module, name("prefix_sum"), 0);
            let one = b.const_i64(1);
            let (lo, hi, st) = bounds(&mut b, 1, n);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let im1 = b.bin(BinOp::Sub, iv, one);
                let prev = b.load(out, im1);
                let x = b.load(a, iv);
                let s = b.bin(BinOp::Add, prev, x);
                b.store(out, iv, s);
            });
            loops.push(l);
            b.ret(None);
            b.finish()
        }
        KernelKind::Recurrence => {
            let x = module.add_array(name("rc_x"), Ty::F64, n as usize);
            let alpha = rng.random_range(0.1..0.9);
            let mut b = FunctionBuilder::new(module, name("recurrence"), 0);
            let a = b.const_f64(alpha);
            let beta = b.const_f64(1.0);
            let one = b.const_i64(1);
            let (lo, hi, st) = bounds(&mut b, 1, n);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let im1 = b.bin(BinOp::Sub, iv, one);
                let prev = b.load(x, im1);
                let ap = b.bin(BinOp::Mul, a, prev);
                let nxt = b.bin(BinOp::Add, ap, beta);
                b.store(x, iv, nxt);
            });
            loops.push(l);
            b.ret(None);
            b.finish()
        }
        KernelKind::MatVec => {
            let rows = (n / 2).max(4);
            let cols = (n / 2).max(4);
            let a = module.add_array(name("mv_a"), Ty::F64, (rows * cols) as usize);
            let x = module.add_array(name("mv_x"), Ty::F64, cols as usize);
            let y = module.add_array(name("mv_y"), Ty::F64, rows as usize);
            let mut b = FunctionBuilder::new(module, name("matvec"), 0);
            let creg = b.const_i64(cols);
            let (lo, hi, st) = bounds(&mut b, 0, rows);
            let outer = b.for_loop(lo, hi, st, |b, i| {
                let z = b.const_f64(0.0);
                b.store(y, i, z);
                let lo2 = b.const_i64(0);
                let hi2 = b.const_i64(cols);
                let st2 = b.const_i64(1);
                let inner = b.for_loop(lo2, hi2, st2, |b, j| {
                    let base = b.bin(BinOp::Mul, i, creg);
                    let ij = b.bin(BinOp::Add, base, j);
                    let av = b.load(a, ij);
                    let xv = b.load(x, j);
                    let p = b.bin(BinOp::Mul, av, xv);
                    let cur = b.load(y, i);
                    let nxt = b.bin(BinOp::Add, cur, p);
                    b.store(y, i, nxt);
                });
                loops.push(inner);
            });
            loops.insert(0, outer);
            b.ret(None);
            b.finish()
        }
        KernelKind::MatMul => {
            let d = (n / 4).clamp(3, 8);
            let a = module.add_array(name("mm_a"), Ty::F64, (d * d) as usize);
            let c = module.add_array(name("mm_b"), Ty::F64, (d * d) as usize);
            let out = module.add_array(name("mm_c"), Ty::F64, (d * d) as usize);
            let mut b = FunctionBuilder::new(module, name("matmul"), 0);
            let dreg = b.const_i64(d);
            let (lo, hi, st) = bounds(&mut b, 0, d);
            let mut mid_inner = Vec::new();
            let outer = b.for_loop(lo, hi, st, |b, i| {
                let lo2 = b.const_i64(0);
                let hi2 = b.const_i64(d);
                let st2 = b.const_i64(1);
                let mid = b.for_loop(lo2, hi2, st2, |b, j| {
                    let basei = b.bin(BinOp::Mul, i, dreg);
                    let ij = b.bin(BinOp::Add, basei, j);
                    let z = b.const_f64(0.0);
                    b.store(out, ij, z);
                    let lo3 = b.const_i64(0);
                    let hi3 = b.const_i64(d);
                    let st3 = b.const_i64(1);
                    let inner = b.for_loop(lo3, hi3, st3, |b, k| {
                        let ik = b.bin(BinOp::Add, basei, k);
                        let basek = b.bin(BinOp::Mul, k, dreg);
                        let kj = b.bin(BinOp::Add, basek, j);
                        let av = b.load(a, ik);
                        let bv = b.load(c, kj);
                        let p = b.bin(BinOp::Mul, av, bv);
                        let cur = b.load(out, ij);
                        let nxt = b.bin(BinOp::Add, cur, p);
                        b.store(out, ij, nxt);
                    });
                    mid_inner.push(inner);
                });
                mid_inner.insert(mid_inner.len() - 1, mid);
            });
            // Order: outer, mid, inner — mid was pushed before inner above
            // via the insert trick; flatten deterministically instead.
            loops.push(outer);
            let mut rest: Vec<LoopId> = mid_inner;
            rest.sort_unstable();
            rest.dedup();
            loops.extend(rest);
            b.ret(None);
            b.finish()
        }
        KernelKind::Jacobi2d => {
            let d = (n / 2).clamp(4, 12);
            let w = d + 2;
            let a = module.add_array(name("j_a"), Ty::F64, (w * w) as usize);
            let out = module.add_array(name("j_b"), Ty::F64, (w * w) as usize);
            let mut b = FunctionBuilder::new(module, name("jacobi2d"), 0);
            let wreg = b.const_i64(w);
            let one = b.const_i64(1);
            let (lo, hi, st) = bounds(&mut b, 1, d + 1);
            let outer = b.for_loop(lo, hi, st, |b, i| {
                let lo2 = b.const_i64(1);
                let hi2 = b.const_i64(d + 1);
                let st2 = b.const_i64(1);
                let inner = b.for_loop(lo2, hi2, st2, |b, j| {
                    let base = b.bin(BinOp::Mul, i, wreg);
                    let ij = b.bin(BinOp::Add, base, j);
                    let jm = b.bin(BinOp::Sub, ij, one);
                    let jp = b.bin(BinOp::Add, ij, one);
                    let im = b.bin(BinOp::Sub, ij, wreg);
                    let ip = b.bin(BinOp::Add, ij, wreg);
                    let v1 = b.load(a, jm);
                    let v2 = b.load(a, jp);
                    let v3 = b.load(a, im);
                    let v4 = b.load(a, ip);
                    let s1 = b.bin(BinOp::Add, v1, v2);
                    let s2 = b.bin(BinOp::Add, v3, v4);
                    let s = b.bin(BinOp::Add, s1, s2);
                    b.store(out, ij, s);
                });
                loops.push(inner);
            });
            loops.insert(0, outer);
            b.ret(None);
            b.finish()
        }
        KernelKind::GaussSeidel => {
            let d = (n / 2).clamp(4, 12);
            let w = d + 2;
            let a = module.add_array(name("gs_a"), Ty::F64, (w * w) as usize);
            let mut b = FunctionBuilder::new(module, name("gauss_seidel"), 0);
            let wreg = b.const_i64(w);
            let one = b.const_i64(1);
            let (lo, hi, st) = bounds(&mut b, 1, d + 1);
            let outer = b.for_loop(lo, hi, st, |b, i| {
                let lo2 = b.const_i64(1);
                let hi2 = b.const_i64(d + 1);
                let st2 = b.const_i64(1);
                let inner = b.for_loop(lo2, hi2, st2, |b, j| {
                    let base = b.bin(BinOp::Mul, i, wreg);
                    let ij = b.bin(BinOp::Add, base, j);
                    let jm = b.bin(BinOp::Sub, ij, one);
                    let jp = b.bin(BinOp::Add, ij, one);
                    let up = b.bin(BinOp::Sub, ij, wreg);
                    let down = b.bin(BinOp::Add, ij, wreg);
                    let v1 = b.load(a, jm);
                    let v2 = b.load(a, jp);
                    let v3 = b.load(a, up);
                    let v4 = b.load(a, down);
                    let s1 = b.bin(BinOp::Add, v1, v2);
                    let s2 = b.bin(BinOp::Add, v3, v4);
                    let s = b.bin(BinOp::Add, s1, s2);
                    b.store(a, ij, s);
                });
                loops.push(inner);
            });
            loops.insert(0, outer);
            b.ret(None);
            b.finish()
        }
        KernelKind::Histogram => {
            let bins = 8.min(n) as usize;
            let keys = module.add_array(name("h_k"), Ty::I64, n as usize);
            let hist = module.add_array(name("h_h"), Ty::F64, bins);
            let mut b = FunctionBuilder::new(module, name("histogram"), 0);
            let breg = b.const_i64(bins as i64);
            // Init: keys[i] = i mod bins (DoAll).
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let init = b.for_loop(lo, hi, st, |b, iv| {
                let k = b.bin(BinOp::Rem, iv, breg);
                b.store(keys, iv, k);
            });
            loops.push(init);
            // Count: hist[keys[i]] += 1 (Reduction on data-dependent cell).
            let onef = b.const_f64(1.0);
            let (lo2, hi2, st2) = bounds(&mut b, 0, n);
            let count = b.for_loop(lo2, hi2, st2, |b, iv| {
                let k = b.load(keys, iv);
                let cur = b.load(hist, k);
                let nxt = b.bin(BinOp::Add, cur, onef);
                b.store(hist, k, nxt);
            });
            loops.push(count);
            b.ret(None);
            b.finish()
        }
        KernelKind::IndirectGather => {
            let a = module.add_array(name("ig_a"), Ty::F64, n as usize);
            let idxa = module.add_array(name("ig_i"), Ty::I64, n as usize);
            let out = module.add_array(name("ig_o"), Ty::F64, n as usize);
            let mut b = FunctionBuilder::new(module, name("gather"), 0);
            let nreg = b.const_i64(n);
            let one = b.const_i64(1);
            // idx[i] = (n-1) - i : a permutation (DoAll init).
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let init = b.for_loop(lo, hi, st, |b, iv| {
                let nm1 = b.bin(BinOp::Sub, nreg, one);
                let r = b.bin(BinOp::Sub, nm1, iv);
                b.store(idxa, iv, r);
            });
            loops.push(init);
            let (lo2, hi2, st2) = bounds(&mut b, 0, n);
            let gather = b.for_loop(lo2, hi2, st2, |b, iv| {
                let j = b.load(idxa, iv);
                let v = b.load(a, j);
                b.store(out, iv, v);
            });
            loops.push(gather);
            b.ret(None);
            b.finish()
        }
        KernelKind::ScatterConflict => {
            let src = module.add_array(name("sc_b"), Ty::F64, n as usize);
            let idxa = module.add_array(name("sc_i"), Ty::I64, n as usize);
            let dst = module.add_array(name("sc_a"), Ty::F64, n as usize);
            let mut b = FunctionBuilder::new(module, name("scatter"), 0);
            let half = b.const_i64((n / 2).max(1));
            // idx[i] = i mod n/2 → every slot written twice (collisions).
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let init = b.for_loop(lo, hi, st, |b, iv| {
                let k = b.bin(BinOp::Rem, iv, half);
                b.store(idxa, iv, k);
            });
            loops.push(init);
            let (lo2, hi2, st2) = bounds(&mut b, 0, n);
            let scatter = b.for_loop(lo2, hi2, st2, |b, iv| {
                let j = b.load(idxa, iv);
                let v = b.load(src, iv);
                b.store(dst, j, v);
            });
            loops.push(scatter);
            b.ret(None);
            b.finish()
        }
        KernelKind::FirFilter => {
            let taps = 4i64;
            let a = module.add_array(name("fir_a"), Ty::F64, (n + taps) as usize);
            let w = module.add_array(name("fir_w"), Ty::F64, taps as usize);
            let out = module.add_array(name("fir_o"), Ty::F64, n as usize);
            let mut b = FunctionBuilder::new(module, name("fir"), 0);
            let t0 = b.const_i64(0);
            let t1 = b.const_i64(1);
            let t2 = b.const_i64(2);
            let t3 = b.const_i64(3);
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                // Unrolled 4-tap dot product: disjoint writes to out[i].
                let mut acc = b.const_f64(0.0);
                for t in [t0, t1, t2, t3] {
                    let ai = b.bin(BinOp::Add, iv, t);
                    let x = b.load(a, ai);
                    let wv = b.load(w, t);
                    let p = b.bin(BinOp::Mul, x, wv);
                    acc = b.bin(BinOp::Add, acc, p);
                }
                b.store(out, iv, acc);
            });
            loops.push(l);
            b.ret(None);
            b.finish()
        }
        KernelKind::Transpose => {
            let d = (n / 2).clamp(4, 12);
            let a = module.add_array(name("tp_a"), Ty::F64, (d * d) as usize);
            let out = module.add_array(name("tp_b"), Ty::F64, (d * d) as usize);
            let mut b = FunctionBuilder::new(module, name("transpose"), 0);
            let dreg = b.const_i64(d);
            let (lo, hi, st) = bounds(&mut b, 0, d);
            let outer = b.for_loop(lo, hi, st, |b, i| {
                let lo2 = b.const_i64(0);
                let hi2 = b.const_i64(d);
                let st2 = b.const_i64(1);
                let inner = b.for_loop(lo2, hi2, st2, |b, j| {
                    let basei = b.bin(BinOp::Mul, i, dreg);
                    let ij = b.bin(BinOp::Add, basei, j);
                    let basej = b.bin(BinOp::Mul, j, dreg);
                    let ji = b.bin(BinOp::Add, basej, i);
                    let v = b.load(a, ij);
                    b.store(out, ji, v);
                });
                loops.push(inner);
            });
            loops.insert(0, outer);
            b.ret(None);
            b.finish()
        }
        KernelKind::TriangularSolve => {
            let d = (n / 2).clamp(4, 10);
            let a = module.add_array(name("ts_l"), Ty::F64, (d * d) as usize);
            let rhs = module.add_array(name("ts_b"), Ty::F64, d as usize);
            let x = module.add_array(name("ts_x"), Ty::F64, d as usize);
            let s = module.add_array(name("ts_s"), Ty::F64, 1);
            let mut b = FunctionBuilder::new(module, name("trisolve"), 0);
            let dreg = b.const_i64(d);
            let z = b.const_i64(0);
            // Init diag: a[i*d+i] = 1 (DoAll) so the divide is safe.
            let (lo0, hi0, st0) = bounds(&mut b, 0, d);
            let init = b.for_loop(lo0, hi0, st0, |b, i| {
                let base = b.bin(BinOp::Mul, i, dreg);
                let ii = b.bin(BinOp::Add, base, i);
                let onef = b.const_f64(1.0);
                b.store(a, ii, onef);
            });
            loops.push(init);
            let (lo, hi, st) = bounds(&mut b, 0, d);
            let outer = b.for_loop(lo, hi, st, |b, i| {
                let zf = b.const_f64(0.0);
                b.store(s, z, zf);
                let lo2 = b.const_i64(0);
                let st2 = b.const_i64(1);
                let inner = b.for_loop(lo2, i, st2, |b, j| {
                    let base = b.bin(BinOp::Mul, i, dreg);
                    let ij = b.bin(BinOp::Add, base, j);
                    let lv = b.load(a, ij);
                    let xv = b.load(x, j);
                    let p = b.bin(BinOp::Mul, lv, xv);
                    let cur = b.load(s, z);
                    let nxt = b.bin(BinOp::Add, cur, p);
                    b.store(s, z, nxt);
                });
                loops.push(inner);
                let bv = b.load(rhs, i);
                let sv = b.load(s, z);
                let num = b.bin(BinOp::Sub, bv, sv);
                let base = b.bin(BinOp::Mul, i, dreg);
                let ii = b.bin(BinOp::Add, base, i);
                let dv = b.load(a, ii);
                let xi = b.bin(BinOp::Div, num, dv);
                b.store(x, i, xi);
            });
            loops.insert(1, outer);
            b.ret(None);
            b.finish()
        }
        KernelKind::TaskSpawn => {
            // Recursive fib callee writing nothing shared.
            let out = module.add_array(name("task_o"), Ty::I64, n as usize);
            let fib_id = FuncId(module.funcs.len() as u32);
            {
                let mut fb = FunctionBuilder::new(module, name("fib"), 1);
                let p = fb.param(0);
                let two = fb.const_i64(2);
                let c = fb.bin(BinOp::CmpLt, p, two);
                let result = fb.const_i64(0);
                fb.if_else(
                    c,
                    |fb| fb.copy_to(result, p),
                    |fb| {
                        let one = fb.const_i64(1);
                        let n1 = fb.bin(BinOp::Sub, p, one);
                        let r1 = fb.call(fib_id, &[n1]);
                        let n2 = fb.bin(BinOp::Sub, p, two);
                        let r2 = fb.call(fib_id, &[n2]);
                        let s = fb.bin(BinOp::Add, r1, r2);
                        fb.copy_to(result, s);
                    },
                );
                fb.ret(Some(result));
                let got = fb.finish();
                debug_assert_eq!(got, fib_id);
            }
            let depth = (n / 4).clamp(3, 8);
            let mut b = FunctionBuilder::new(module, name("task_spawn"), 0);
            let dreg = b.const_i64(depth);
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let arg = b.bin(BinOp::Rem, iv, dreg);
                let r = b.call(fib_id, &[arg]);
                b.store(out, iv, r);
            });
            loops.push(l);
            b.ret(None);
            b.finish()
        }
        KernelKind::CallDoAll => {
            let a = module.add_array(name("cd_a"), Ty::F64, n as usize);
            let out = module.add_array(name("cd_o"), Ty::F64, n as usize);
            // Pure helper: poly(x) = x·x + x (registers only).
            let helper = {
                let mut hb = FunctionBuilder::new(module, name("poly"), 1);
                let x = hb.param(0);
                let x2 = hb.bin(BinOp::Mul, x, x);
                let r = hb.bin(BinOp::Add, x2, x);
                hb.ret(Some(r));
                hb.finish()
            };
            let mut b = FunctionBuilder::new(module, name("call_doall"), 0);
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let x = b.load(a, iv);
                let y = b.call(helper, &[x]);
                b.store(out, iv, y);
            });
            loops.push(l);
            b.ret(None);
            b.finish()
        }
        KernelKind::TinyDoAll => {
            let a = module.add_array(name("td_a"), Ty::F64, 2);
            let out = module.add_array(name("td_o"), Ty::F64, 2);
            let mut b = FunctionBuilder::new(&mut *module, name("tiny_doall"), 0);
            let (lo, hi, st) = bounds(&mut b, 0, 2);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let x = b.load(a, iv);
                let y = b.bin(BinOp::Add, x, x);
                b.store(out, iv, y);
            });
            loops.push(l);
            b.ret(None);
            b.finish()
        }
        KernelKind::ScalarSumReduction => {
            let a = module.add_array(name("ss_a"), Ty::F64, n as usize);
            let out = module.add_array(name("ss_o"), Ty::F64, 1);
            let mut b = FunctionBuilder::new(module, name("scalar_sum"), 0);
            let acc = b.const_f64(0.0);
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let x = b.load(a, iv);
                b.bin_to(acc, BinOp::Add, acc, x);
            });
            loops.push(l);
            let z = b.const_i64(0);
            b.store(out, z, acc);
            b.ret(Some(acc));
            b.finish()
        }
        KernelKind::NonCommutativeScalar => {
            let a = module.add_array(name("nc_a"), Ty::F64, n as usize);
            let out = module.add_array(name("nc_o"), Ty::F64, 1);
            let mut b = FunctionBuilder::new(module, name("noncomm_scalar"), 0);
            let acc = b.const_f64(1.0);
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let x = b.load(a, iv);
                let scaled = b.bin(BinOp::Mul, x, acc);
                b.bin_to(acc, BinOp::Sub, acc, scaled);
            });
            loops.push(l);
            let z = b.const_i64(0);
            b.store(out, z, acc);
            b.ret(Some(acc));
            b.finish()
        }
        KernelKind::DistanceRecurrence => {
            let a = module.add_array(name("dr_a"), Ty::F64, (n + 4) as usize);
            let mut b = FunctionBuilder::new(module, name("dist_rec"), 0);
            let four = b.const_i64(4);
            let onef = b.const_f64(1.0);
            let (lo, hi, st) = bounds(&mut b, 4, n + 4);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let p = b.bin(BinOp::Sub, iv, four);
                let x = b.load(a, p);
                let y = b.bin(BinOp::Add, x, onef);
                b.store(a, iv, y);
            });
            loops.push(l);
            b.ret(None);
            b.finish()
        }
        KernelKind::GuardedReduction => {
            let a = module.add_array(name("gr_a"), Ty::F64, n as usize);
            let s = module.add_array(name("gr_s"), Ty::F64, 1);
            let mut b = FunctionBuilder::new(module, name("guarded_red"), 0);
            let z = b.const_i64(0);
            let one = b.const_i64(1);
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let bit = b.bin(BinOp::And, iv, one);
                b.if_then(bit, |b| {
                    let x = b.load(a, iv);
                    let cur = b.load(s, z);
                    let nxt = b.bin(BinOp::Add, cur, x);
                    b.store(s, z, nxt);
                });
            });
            loops.push(l);
            b.ret(None);
            b.finish()
        }
        KernelKind::ScatterPermutation => {
            let src = module.add_array(name("sp_b"), Ty::F64, n as usize);
            let idxa = module.add_array(name("sp_i"), Ty::I64, n as usize);
            let dst = module.add_array(name("sp_a"), Ty::F64, n as usize);
            let mut b = FunctionBuilder::new(module, name("scatter_perm"), 0);
            let nreg = b.const_i64(n);
            // Pick a multiplier coprime with n so i·c mod n is a bijection.
            let c = (3..n).find(|&c| gcd(c, n) == 1).unwrap_or(1);
            let creg = b.const_i64(c);
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let init = b.for_loop(lo, hi, st, |b, iv| {
                let prod = b.bin(BinOp::Mul, iv, creg);
                let k = b.bin(BinOp::Rem, prod, nreg);
                b.store(idxa, iv, k);
            });
            loops.push(init);
            let (lo2, hi2, st2) = bounds(&mut b, 0, n);
            let scatter = b.for_loop(lo2, hi2, st2, |b, iv| {
                let j = b.load(idxa, iv);
                let v = b.load(src, iv);
                b.store(dst, j, v);
            });
            loops.push(scatter);
            b.ret(None);
            b.finish()
        }
        KernelKind::GuardedScatter => {
            let key = module.add_array(name("gs_k"), Ty::F64, n as usize);
            let src = module.add_array(name("gs_s"), Ty::F64, n as usize);
            let dst = module.add_array(name("gs_d"), Ty::F64, n as usize);
            let mut b = FunctionBuilder::new(module, name("guarded_scatter"), 0);
            let t = b.const_f64(1.0);
            let z = b.const_i64(0);
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let k = b.load(key, iv);
                let c = b.bin(BinOp::CmpLt, k, t);
                let j = b.copy(z);
                b.if_then(c, |b| {
                    b.copy_to(j, iv);
                });
                let v = b.load(src, iv);
                b.store(dst, j, v);
            });
            loops.push(l);
            b.ret(None);
            b.finish()
        }
        KernelKind::IndirectGatherReduction => {
            let a = module.add_array(name("igr_a"), Ty::F64, n as usize);
            let idxa = module.add_array(name("igr_i"), Ty::I64, n as usize);
            let s = module.add_array(name("igr_s"), Ty::F64, 1);
            let mut b = FunctionBuilder::new(module, name("gather_red"), 0);
            let z = b.const_i64(0);
            let last = b.const_i64(n - 1);
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let init = b.for_loop(lo, hi, st, |b, iv| {
                let k = b.bin(BinOp::Sub, last, iv);
                b.store(idxa, iv, k);
            });
            loops.push(init);
            let (lo2, hi2, st2) = bounds(&mut b, 0, n);
            let red = b.for_loop(lo2, hi2, st2, |b, iv| {
                let j = b.load(idxa, iv);
                let x = b.load(a, j);
                let cur = b.load(s, z);
                let nxt = b.bin(BinOp::Add, cur, x);
                b.store(s, z, nxt);
            });
            loops.push(red);
            b.ret(None);
            b.finish()
        }
        KernelKind::PointerChase => {
            let next = module.add_array(name("pc_n"), Ty::I64, n as usize);
            let pcell = module.add_array(name("pc_p"), Ty::I64, 1);
            let mut b = FunctionBuilder::new(module, name("list_walk"), 0);
            let z = b.const_i64(0);
            let one = b.const_i64(1);
            let nreg = b.const_i64(n);
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let init = b.for_loop(lo, hi, st, |b, iv| {
                let nx = b.bin(BinOp::Add, iv, one);
                b.store(next, iv, nx);
            });
            loops.push(init);
            b.store(pcell, z, z);
            let walk = b.while_loop(
                |b| {
                    let p = b.load(pcell, z);
                    b.bin(BinOp::CmpLt, p, nreg)
                },
                |b| {
                    let p = b.load(pcell, z);
                    let np = b.load(next, p);
                    b.store(pcell, z, np);
                },
            );
            loops.push(walk);
            b.ret(None);
            b.finish()
        }
        KernelKind::TriangularCopy => {
            let a = module.add_array(name("tc_a"), Ty::F64, (n * n) as usize);
            let out = module.add_array(name("tc_o"), Ty::F64, (n * n) as usize);
            let op = jitter_op(rng);
            let mut b = FunctionBuilder::new(module, name("tri_copy"), 0);
            let nreg = b.const_i64(n);
            let (lo, hi, st) = bounds(&mut b, 0, n);
            let outer = b.for_loop(lo, hi, st, |b, i| {
                let lo2 = b.const_i64(0);
                let st2 = b.const_i64(1);
                let inner = b.for_loop(lo2, i, st2, |b, j| {
                    let jn = b.bin(BinOp::Mul, j, nreg);
                    let src = b.bin(BinOp::Add, jn, i);
                    let x = b.load(a, src);
                    let y = b.bin(op, x, x);
                    let base = b.bin(BinOp::Mul, i, nreg);
                    let dst = b.bin(BinOp::Add, base, j);
                    b.store(out, dst, y);
                });
                loops.push(inner);
            });
            loops.insert(0, outer);
            b.ret(None);
            b.finish()
        }
        KernelKind::MultiDistanceRecurrence => {
            let a = module.add_array(name("md_a"), Ty::F64, (n + 5) as usize);
            let mut b = FunctionBuilder::new(module, name("multi_dist"), 0);
            let two = b.const_i64(2);
            let five = b.const_i64(5);
            let (lo, hi, st) = bounds(&mut b, 5, n + 5);
            let l = b.for_loop(lo, hi, st, |b, iv| {
                let p2 = b.bin(BinOp::Sub, iv, two);
                let p5 = b.bin(BinOp::Sub, iv, five);
                let x = b.load(a, p2);
                let y = b.load(a, p5);
                let v = b.bin(BinOp::Add, x, y);
                b.store(a, iv, v);
            });
            loops.push(l);
            b.ret(None);
            b.finish()
        }
    };

    let patterns = kind.patterns();
    assert_eq!(
        loops.len(),
        patterns.len(),
        "{kind:?}: created {} loops, expected {}",
        loops.len(),
        patterns.len()
    );
    (func, loops.into_iter().zip(patterns).collect())
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Emit `(lo, hi, step)` constant registers for a counted loop.
fn bounds(b: &mut FunctionBuilder<'_>, lo: i64, hi: i64) -> (mvgnn_ir::VReg, mvgnn_ir::VReg, mvgnn_ir::VReg) {
    let l = b.const_i64(lo);
    let h = b.const_i64(hi);
    let s = b.const_i64(1);
    (l, h, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_ir::verify::verify_module;
    use mvgnn_profiler::{classify_loop, profile_module, LoopClass};
    use rand::SeedableRng;

    /// Every template must (a) verify, (b) execute, and (c) have its
    /// constructive label agree with the dependence profiler's verdict.
    #[test]
    fn all_templates_verify_execute_and_match_profiler() {
        for kind in KernelKind::ALL {
            let mut rng = StdRng::seed_from_u64(9);
            let mut m = Module::new(format!("{kind:?}"));
            let (func, loops) = build_kernel(&mut m, kind, 0, 12, &mut rng);
            verify_module(&m).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            let res = profile_module(&m, func, &[])
                .unwrap_or_else(|e| panic!("{kind:?}: execution failed: {e}"));
            for (l, pat) in &loops {
                let class = classify_loop(&m, func, *l, &res.deps);
                if kind.trace_limited() {
                    // The whole point: the trace cannot witness the
                    // dependence, so the dynamic verdict *must* disagree
                    // with the expert label.
                    assert!(
                        class.is_parallelizable() && !pat.is_parallelizable(),
                        "{kind:?}: expected an optimistic trace verdict, got {class:?} vs {pat:?}"
                    );
                    continue;
                }
                let expect_parallel = pat.is_parallelizable();
                assert_eq!(
                    class.is_parallelizable(),
                    expect_parallel,
                    "{kind:?} loop {l:?}: template says {pat:?}, profiler says {class:?}"
                );
                // Strong agreement for the named patterns.
                match pat {
                    PatternKind::DoAll | PatternKind::Task => {
                        assert_eq!(class, LoopClass::DoAll, "{kind:?} {l:?}: {class:?}")
                    }
                    PatternKind::Reduction => {
                        assert_eq!(class, LoopClass::Reduction, "{kind:?} {l:?}: {class:?}")
                    }
                    PatternKind::Serial => {
                        assert!(matches!(class, LoopClass::NotParallel { .. }))
                    }
                }
            }
        }
    }

    #[test]
    fn every_family_is_populated_and_every_kind_has_one() {
        let mut seen = std::collections::HashSet::new();
        for kind in KernelKind::ALL {
            seen.insert(kind.family());
        }
        for fam in KernelFamily::ALL {
            assert!(seen.contains(&fam), "{fam}: no kernel in family");
        }
        // The four adversarial kinds land where the taxonomy says.
        assert_eq!(KernelKind::IndirectGatherReduction.family(), KernelFamily::Indirect);
        assert_eq!(KernelKind::PointerChase.family(), KernelFamily::PointerChase);
        assert_eq!(KernelKind::TriangularCopy.family(), KernelFamily::Triangular);
        assert_eq!(
            KernelKind::MultiDistanceRecurrence.family(),
            KernelFamily::LongDistance
        );
    }

    #[test]
    fn loop_counts_match_declaration() {
        for kind in KernelKind::ALL {
            let mut rng = StdRng::seed_from_u64(1);
            let mut m = Module::new("t");
            let (_, loops) = build_kernel(&mut m, kind, 0, 8, &mut rng);
            assert_eq!(loops.len(), kind.loop_count(), "{kind:?}");
            assert_eq!(kind.patterns().len(), kind.loop_count(), "{kind:?}");
        }
    }

    #[test]
    fn kernels_compose_in_one_module() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = Module::new("app");
        let mut all = Vec::new();
        for (i, kind) in [KernelKind::VectorMap, KernelKind::SumReduction, KernelKind::PrefixSum]
            .into_iter()
            .enumerate()
        {
            all.push(build_kernel(&mut m, kind, i, 8, &mut rng));
        }
        verify_module(&m).unwrap();
        assert_eq!(m.loop_count(), 3);
        // Each runs independently.
        for (f, _) in &all {
            profile_module(&m, *f, &[]).unwrap();
        }
    }

    #[test]
    fn task_spawn_runs_recursion() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = Module::new("t");
        let (f, loops) = build_kernel(&mut m, KernelKind::TaskSpawn, 0, 16, &mut rng);
        let res = profile_module(&m, f, &[]).unwrap();
        assert!(res.stats.calls > 16, "driver must call fib per iteration");
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn jitter_produces_different_token_streams() {
        let build = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = Module::new("t");
            build_kernel(&mut m, KernelKind::VectorMap, 0, 8, &mut rng);
            m.funcs[0]
                .blocks
                .iter()
                .flat_map(|b| b.insts.iter().map(|i| i.token()))
                .collect::<Vec<_>>()
        };
        let variants: std::collections::HashSet<Vec<String>> =
            (0..12).map(build).collect();
        assert!(variants.len() >= 2, "op jitter should vary the stream");
    }
}
