//! Property tests pinning the sharded pipeline's determinism contract:
//! any `(num_shards, shard_id)` partition of a configuration generates a
//! union bit-identical to the monolithic (single-process) build, and the
//! annotation-noise rule is a pure function of the base-loop identity —
//! so it cannot depend on which shard applied it.

use mvgnn_dataset::{
    assemble_dataset, fit_inst2vec, generate_shard, noisy_label, CorpusConfig, KernelFamily,
    LabeledSample, ShardPlan, Suite,
};
use mvgnn_embed::Inst2VecConfig;
use mvgnn_ir::transform::OptLevel;
use proptest::prelude::*;

fn tiny_cfg(corpus_seed: u64, gen_seed: u64, noise: f64) -> CorpusConfig {
    CorpusConfig {
        seeds: vec![gen_seed, gen_seed + 1],
        opt_levels: vec![OptLevel::O0, OptLevel::O3],
        per_class: None,
        test_fraction: 0.25,
        suite: Some(Suite::Bots),
        inst2vec: Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 3 },
        sample: Default::default(),
        seed: corpus_seed,
        label_noise: noise,
        static_features: false,
    }
}

/// Everything float-bearing in a sample, as bits, plus the family tag.
#[allow(clippy::type_complexity)]
fn fingerprint(
    s: &LabeledSample,
) -> (u64, OptLevel, usize, KernelFamily, Vec<u32>, Vec<u32>, Vec<usize>) {
    (
        s.base_key,
        s.level,
        s.label,
        s.family,
        s.sample.node_feats.iter().map(|x| x.to_bits()).collect(),
        s.sample.struct_dists.iter().map(|x| x.to_bits()).collect(),
        s.sample.token_ids.clone(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The union of any shard partition is bit-identical to the
    /// single-process build, sample by sample.
    #[test]
    fn shard_union_matches_monolith(
        num_shards in 2usize..=7,
        gen_seed in 1u64..50,
        corpus_seed in 1u64..1000,
    ) {
        let cfg = tiny_cfg(corpus_seed, gen_seed, 0.0);
        let emb = fit_inst2vec(&cfg);
        let mono = generate_shard(&cfg, &emb, 0, 1);
        prop_assert!(!mono.is_empty());
        let mut union: Vec<LabeledSample> = (0..num_shards)
            .flat_map(|s| generate_shard(&cfg, &emb, s, num_shards))
            .collect();
        union.sort_by_key(|s| (s.base_key, s.sample.n, s.label, s.level));
        prop_assert_eq!(union.len(), mono.len());
        for (a, b) in union.iter().zip(&mono) {
            prop_assert_eq!(fingerprint(a), fingerprint(b));
        }
    }

    /// Assembling the union of shards (in any concatenation order)
    /// produces a dataset identical to assembling the monolithic build —
    /// split membership, balance selection and noisy labels included.
    #[test]
    fn assembly_is_shard_count_invariant(
        num_shards in 2usize..=5,
        corpus_seed in 1u64..1000,
        noise_pct in 0u32..30,
        reverse in any::<bool>(),
    ) {
        let cfg = tiny_cfg(corpus_seed, 7, noise_pct as f64 / 100.0);
        let emb = fit_inst2vec(&cfg);
        let mono = assemble_dataset(generate_shard(&cfg, &emb, 0, 1), emb.clone(), &cfg);
        let shard_ids: Vec<usize> = if reverse {
            (0..num_shards).rev().collect()
        } else {
            (0..num_shards).collect()
        };
        let union: Vec<LabeledSample> = shard_ids
            .into_iter()
            .flat_map(|s| generate_shard(&cfg, &emb, s, num_shards))
            .collect();
        let sharded = assemble_dataset(union, emb, &cfg);
        for (a, b) in [
            (&mono.train, &sharded.train),
            (&mono.test, &sharded.test),
            (&mono.test_full, &sharded.test_full),
            (&mono.full, &sharded.full),
        ] {
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert_eq!(fingerprint(x), fingerprint(y));
            }
        }
    }

    /// Every work unit lands in exactly one shard for every shard count.
    #[test]
    fn plans_partition_the_units(num_shards in 1usize..=16, gen_seed in 1u64..100) {
        let cfg = tiny_cfg(1, gen_seed, 0.0);
        let plan = ShardPlan::new(&cfg, num_shards);
        let total: usize = (0..num_shards).map(|s| plan.units_of(s).count()).sum();
        prop_assert_eq!(total, plan.unit_count());
        // Unit k sits in shard k % num_shards and nowhere else.
        for s in 0..num_shards {
            for (seed, spec) in plan.units_of(s) {
                for other in 0..num_shards {
                    if other == s {
                        continue;
                    }
                    prop_assert!(
                        !plan
                            .units_of(other)
                            .any(|(o_seed, o_spec)| o_seed == seed && o_spec.name == spec.name),
                        "unit duplicated across shards {s} and {other}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The adversarial stress suite rides the same determinism contract
    /// as the paper corpus: any shard partition generates the same
    /// samples with the same family tags, and every kernel family is
    /// populated (the tag byte an MVSH shard stores can therefore never
    /// depend on the partition that wrote it).
    #[test]
    fn stress_family_tags_are_shard_invariant(
        num_shards in 2usize..=5,
        gen_seed in 1u64..30,
    ) {
        let cfg = CorpusConfig {
            suite: Some(Suite::Stress),
            seeds: vec![gen_seed],
            opt_levels: vec![OptLevel::O0],
            ..tiny_cfg(1, gen_seed, 0.0)
        };
        let emb = fit_inst2vec(&cfg);
        let mono = generate_shard(&cfg, &emb, 0, 1);
        prop_assert!(!mono.is_empty());
        let mut union: Vec<LabeledSample> = (0..num_shards)
            .flat_map(|s| generate_shard(&cfg, &emb, s, num_shards))
            .collect();
        union.sort_by_key(|s| (s.base_key, s.sample.n, s.label, s.level));
        prop_assert_eq!(union.len(), mono.len());
        for (a, b) in union.iter().zip(&mono) {
            prop_assert_eq!(fingerprint(a), fingerprint(b));
        }
        for fam in KernelFamily::ALL {
            prop_assert!(
                mono.iter().any(|s| s.family == fam),
                "stress corpus must populate family {fam}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The annotation-noise rule is a pure function of
    /// `(base_key, corpus_seed, noise, label)`: repeated application
    /// agrees, output stays binary, and flipping is symmetric — so it is
    /// invariant under any shard partition by construction.
    #[test]
    fn noisy_label_is_pure_and_binary(
        base_key in any::<u64>(),
        corpus_seed in any::<u64>(),
        noise_pct in 0u32..=100,
        label in 0usize..=1,
    ) {
        let noise = noise_pct as f64 / 100.0;
        let once = noisy_label(base_key, corpus_seed, noise, label);
        prop_assert!(once <= 1);
        prop_assert_eq!(once, noisy_label(base_key, corpus_seed, noise, label));
        // A flip decision depends only on the key/seed roll, not on the
        // incoming label: either both labels pass through or both flip.
        let zero = noisy_label(base_key, corpus_seed, noise, 0);
        let one = noisy_label(base_key, corpus_seed, noise, 1);
        prop_assert!(
            (zero == 0 && one == 1) || (zero == 1 && one == 0),
            "flip must be label-symmetric: 0->{zero}, 1->{one}"
        );
    }
}
