//! Fault injection for the MVSH readers: every corruption mode — bad
//! magic, bad version, truncation at any frame boundary, a flipped
//! payload byte, a lying record count — must surface as the same typed
//! [`ShardError`] from both the buffered [`ShardReader`] and the
//! zero-copy [`MappedShardReader`], and never as a panic (or, for the
//! mapped path, a SIGBUS from reading past the file). [`verify_shard`]
//! must accept exactly the shards the readers accept.

use mvgnn_dataset::{
    fit_inst2vec, verify_shard, write_shard, CorpusConfig, LabeledSample, MappedShardReader,
    ShardError, ShardReader, Suite,
};
use mvgnn_embed::Inst2VecConfig;
use mvgnn_ir::transform::OptLevel;
use std::path::{Path, PathBuf};

fn tiny_cfg() -> CorpusConfig {
    CorpusConfig {
        seeds: vec![7],
        opt_levels: vec![OptLevel::O0],
        per_class: None,
        test_fraction: 0.25,
        suite: Some(Suite::PolyBench),
        inst2vec: Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 3 },
        sample: Default::default(),
        seed: 11,
        label_noise: 0.0,
        static_features: false,
    }
}

/// Write one intact shard into a fresh temp dir and return its path.
fn intact_shard(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("mvgnn_fault_injection_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = tiny_cfg();
    let emb = fit_inst2vec(&cfg);
    let (path, n) = write_shard(&dir, &cfg, &emb, 0, 1).unwrap();
    assert!(n > 0, "fixture shard must not be empty");
    (dir, path)
}

/// Drain a mapped reader to its terminal outcome.
fn mapped_outcome(path: &Path) -> Result<Vec<LabeledSample>, ShardError> {
    MappedShardReader::open(path)?.collect()
}

/// Drain a buffered reader to its terminal outcome.
fn buffered_outcome(path: &Path) -> Result<Vec<LabeledSample>, ShardError> {
    ShardReader::open(path)?.collect()
}

/// Coarse equivalence class of a shard outcome, for cross-reader parity.
fn class(r: &Result<Vec<LabeledSample>, ShardError>) -> String {
    match r {
        Ok(v) => format!("ok:{}", v.len()),
        Err(ShardError::Io(_)) => "io".into(),
        Err(ShardError::BadMagic) => "magic".into(),
        Err(ShardError::BadVersion(v)) => format!("version:{v}"),
        Err(ShardError::Truncated) => "truncated".into(),
        Err(ShardError::Checksum { record }) => format!("checksum:{record}"),
        Err(ShardError::Malformed(_)) => "malformed".into(),
        Err(ShardError::CountMismatch { expected, got }) => format!("count:{expected}:{got}"),
        Err(ShardError::Embedding(_)) => "embedding".into(),
    }
}

#[test]
fn intact_shard_reads_identically_through_both_readers() {
    let (dir, path) = intact_shard("parity");
    let buffered = buffered_outcome(&path).unwrap();
    let mapped = mapped_outcome(&path).unwrap();
    assert_eq!(buffered.len(), mapped.len());
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    for (b, m) in buffered.iter().zip(&mapped) {
        assert_eq!(b.base_key, m.base_key);
        assert_eq!(b.label, m.label);
        assert_eq!(bits(&b.sample.node_feats), bits(&m.sample.node_feats));
        assert_eq!(bits(&b.sample.struct_dists), bits(&m.sample.struct_dists));
        assert_eq!(b.sample.adj, m.sample.adj);
    }
    let (meta, n) = verify_shard(&path).unwrap();
    assert_eq!(n as usize, mapped.len());
    assert_eq!(meta, MappedShardReader::open(&path).unwrap().meta());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_truncation_point_is_typed_in_both_readers() {
    let (dir, path) = intact_shard("truncate");
    let bytes = std::fs::read(&path).unwrap();
    // Every prefix would be O(n²) over a multi-megabyte shard; cut at
    // the structurally interesting points instead: inside the header,
    // at the header edge, inside the first frame, inside the first
    // payload, and one byte short of the end.
    let cuts = [0, 3, 7, 16, 31, 32, 35, 40, 44, 60, bytes.len() - 1];
    for &cut in &cuts {
        let t = path.with_extension(format!("cut{cut}"));
        std::fs::write(&t, &bytes[..cut]).unwrap();
        let m = mapped_outcome(&t);
        assert!(m.is_err(), "mapped reader accepted a {cut}-byte prefix");
        let b = buffered_outcome(&t);
        assert!(b.is_err(), "buffered reader accepted a {cut}-byte prefix");
        assert_eq!(class(&m), class(&b), "cut at {cut}");
        assert!(verify_shard(&t).is_err(), "verify accepted a {cut}-byte prefix");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_magic_and_bad_version_are_typed() {
    let (dir, path) = intact_shard("header");
    let bytes = std::fs::read(&path).unwrap();

    let mut magic = bytes.clone();
    magic[0] = b'X';
    let p = path.with_extension("magic");
    std::fs::write(&p, &magic).unwrap();
    assert!(matches!(mapped_outcome(&p), Err(ShardError::BadMagic)));
    assert!(matches!(verify_shard(&p), Err(ShardError::BadMagic)));

    let mut version = bytes.clone();
    version[4] = 0x2a;
    let p = path.with_extension("version");
    std::fs::write(&p, &version).unwrap();
    assert!(matches!(mapped_outcome(&p), Err(ShardError::BadVersion(42))));
    assert!(matches!(verify_shard(&p), Err(ShardError::BadVersion(42))));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_payload_byte_is_a_checksum_error_in_record_zero() {
    let (dir, path) = intact_shard("checksum");
    let mut bytes = std::fs::read(&path).unwrap();
    // First record's payload starts at header (32) + frame (12).
    bytes[44] ^= 0xff;
    let p = path.with_extension("flip");
    std::fs::write(&p, &bytes).unwrap();
    assert!(matches!(mapped_outcome(&p), Err(ShardError::Checksum { record: 0 })));
    assert!(matches!(buffered_outcome(&p), Err(ShardError::Checksum { record: 0 })));
    assert!(matches!(verify_shard(&p), Err(ShardError::Checksum { record: 0 })));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lying_record_counts_are_count_mismatches() {
    let (dir, path) = intact_shard("count");
    let bytes = std::fs::read(&path).unwrap();
    let declared = MappedShardReader::open(&path).unwrap().declared_records();

    // Understated count: the reader must notice trailing records.
    let mut under = bytes.clone();
    under[24..32].copy_from_slice(&(declared - 1).to_le_bytes());
    let p = path.with_extension("under");
    std::fs::write(&p, &under).unwrap();
    assert!(matches!(mapped_outcome(&p), Err(ShardError::CountMismatch { .. })));
    assert!(matches!(buffered_outcome(&p), Err(ShardError::CountMismatch { .. })));
    assert!(matches!(verify_shard(&p), Err(ShardError::CountMismatch { .. })));

    // Overstated count: the reader must notice the early end.
    let mut over = bytes.clone();
    over[24..32].copy_from_slice(&(declared + 1).to_le_bytes());
    let p = path.with_extension("over");
    std::fs::write(&p, &over).unwrap();
    assert!(matches!(mapped_outcome(&p), Err(ShardError::CountMismatch { .. })));
    assert!(matches!(buffered_outcome(&p), Err(ShardError::CountMismatch { .. })));
    assert!(matches!(verify_shard(&p), Err(ShardError::CountMismatch { .. })));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversized_record_length_is_refused_before_allocation() {
    let (dir, path) = intact_shard("length");
    let mut bytes = std::fs::read(&path).unwrap();
    // First record's length field is at offset 32; declare 4 GiB-ish.
    bytes[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
    let p = path.with_extension("huge");
    std::fs::write(&p, &bytes).unwrap();
    assert!(matches!(mapped_outcome(&p), Err(ShardError::Malformed(_))));
    assert!(matches!(buffered_outcome(&p), Err(ShardError::Malformed(_))));
    assert!(matches!(verify_shard(&p), Err(ShardError::Malformed(_))));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_and_tiny_files_are_typed_not_sigbus() {
    let dir = std::env::temp_dir().join("mvgnn_fault_injection_tiny");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let empty = dir.join("empty.mvsh");
    std::fs::write(&empty, b"").unwrap();
    assert!(matches!(MappedShardReader::open(&empty), Err(ShardError::Truncated)));
    let junk = dir.join("junk.mvsh");
    std::fs::write(&junk, b"not a shard at all").unwrap();
    assert!(matches!(MappedShardReader::open(&junk), Err(ShardError::BadMagic)));
    let missing = dir.join("missing.mvsh");
    assert!(matches!(MappedShardReader::open(&missing), Err(ShardError::Io(_))));
    std::fs::remove_dir_all(&dir).ok();
}
