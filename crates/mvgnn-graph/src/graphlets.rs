//! Small-graphlet census over directed graphs.
//!
//! The related-work baselines (Shervashidze et al.) characterise program
//! graphs by counts of 3-node motifs. We implement a directed triad census
//! restricted to the connected triads that matter for dependence graphs:
//! chains, forks, joins, triangles and 2-cycles. These counts also feed an
//! ablation that replaces anonymous walks with graphlet features.

use crate::csr::Csr;

/// Connected 3-node directed motif classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Motif {
    /// `a -> b -> c`
    Chain,
    /// `a -> b, a -> c`
    Fork,
    /// `a -> c, b -> c`
    Join,
    /// `a -> b -> c -> a` (or any feed-forward triangle)
    Triangle,
    /// contains a 2-cycle `a <-> b` plus a third attached node
    TwoCycle,
}

/// Fixed feature order for [`motif_counts`] vectors.
pub const MOTIF_ORDER: [Motif; 5] =
    [Motif::Chain, Motif::Fork, Motif::Join, Motif::Triangle, Motif::TwoCycle];

/// Count connected 3-node motifs. Complexity is O(Σ deg(v)²) over the
/// undirected skeleton, fine for per-loop PEGs (tens to hundreds of nodes).
pub fn motif_counts(csr: &Csr) -> [u64; 5] {
    let n = csr.node_count();
    // Undirected skeleton adjacency for triple enumeration.
    let mut und: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n as u32 {
        for &t in csr.neighbors(v) {
            if t != v {
                und[v as usize].push(t);
                und[t as usize].push(v);
            }
        }
    }
    for l in &mut und {
        l.sort_unstable();
        l.dedup();
    }

    let mut counts = [0u64; 5];
    let edge = |a: u32, b: u32| csr.contains_edge(a, b);
    // Enumerate connected triples via a centre node with two distinct
    // undirected neighbours; triangles get visited from all three centres,
    // open triads from exactly one centre — correct for by motif type below.
    let mut tri_raw = 0u64;
    for b in 0..n as u32 {
        let nbrs = &und[b as usize];
        for i in 0..nbrs.len() {
            for j in i + 1..nbrs.len() {
                let a = nbrs[i];
                let c = nbrs[j];
                let closed = und[a as usize].binary_search(&c).is_ok();
                let ab = edge(a, b);
                let ba = edge(b, a);
                let cb = edge(c, b);
                let bc = edge(b, c);
                if closed {
                    // Count each triangle once (from its smallest node).
                    if b < a && b < c {
                        let has_2cycle = (ab && ba)
                            || (bc && cb)
                            || (edge(a, c) && edge(c, a));
                        if has_2cycle {
                            counts[4] += 1;
                        } else {
                            counts[3] += 1;
                        }
                        tri_raw += 1;
                    }
                } else {
                    // Open triad centred at b.
                    if (ab && ba) || (bc && cb) {
                        counts[4] += 1;
                    } else if ab && bc {
                        counts[0] += 1; // a -> b -> c
                    } else if cb && ba {
                        counts[0] += 1; // c -> b -> a
                    } else if ba && bc {
                        counts[1] += 1; // fork from b
                    } else if ab && cb {
                        counts[2] += 1; // join into b
                    }
                }
            }
        }
    }
    let _ = tri_raw;
    counts
}

/// Normalised motif feature vector (sums to 1 over present motifs; all-zero
/// for graphs with no connected triple).
pub fn motif_features(csr: &Csr) -> [f32; 5] {
    let counts = motif_counts(csr);
    let total: u64 = counts.iter().sum();
    let mut out = [0.0f32; 5];
    if total == 0 {
        return out;
    }
    for (o, &c) in out.iter_mut().zip(&counts) {
        *o = c as f32 / total as f32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_counts_one_chain() {
        let csr = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let c = motif_counts(&csr);
        assert_eq!(c, [1, 0, 0, 0, 0]);
    }

    #[test]
    fn fork_and_join() {
        let fork = Csr::from_edges(3, &[(0, 1), (0, 2)]);
        assert_eq!(motif_counts(&fork), [0, 1, 0, 0, 0]);
        let join = Csr::from_edges(3, &[(0, 2), (1, 2)]);
        assert_eq!(motif_counts(&join), [0, 0, 1, 0, 0]);
    }

    #[test]
    fn triangle_counted_once() {
        let csr = Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let c = motif_counts(&csr);
        assert_eq!(c[3], 1);
        assert_eq!(c[0] + c[1] + c[2] + c[4], 0);
    }

    #[test]
    fn two_cycle_detected() {
        let csr = Csr::from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        let c = motif_counts(&csr);
        assert_eq!(c[4], 1);
    }

    #[test]
    fn stencil_vs_reduction_motifs_differ() {
        // Reduction: all iterations write one accumulator -> join-heavy.
        let red = Csr::from_edges(5, &[(0, 4), (1, 4), (2, 4), (3, 4)]);
        // Stencil chain: neighbour-coupled chain -> chain-heavy.
        let sten = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let fr = motif_features(&red);
        let fs = motif_features(&sten);
        assert!(fr[2] > 0.9, "reduction should be join-dominated: {fr:?}");
        assert!(fs[0] > 0.9, "stencil should be chain-dominated: {fs:?}");
    }

    #[test]
    fn features_normalised_or_zero() {
        let empty = Csr::from_edges(4, &[]);
        assert_eq!(motif_features(&empty), [0.0; 5]);
        let csr = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        let f = motif_features(&csr);
        let sum: f32 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }
}
