//! Random walks and anonymous walks (Ivanov & Burnaev, ICML'18).
//!
//! The structural view of MV-GNN samples γ random walks of length `l` from
//! every node, maps each to its *anonymous* form (node identities replaced
//! by first-occurrence indices), and summarises the node by the empirical
//! distribution over the anonymous-walk vocabulary (paper Eq. 3); the graph
//! distribution is the node-mean (Eq. 4).
//!
//! Sampling is deterministic: node `v` uses an RNG seeded by
//! `mix(seed, v)`, so results are identical whether sampled serially or in
//! parallel with rayon.

use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// An anonymous walk: node identities replaced by first-occurrence indices.
/// `(v1, v2, v3, v2)` becomes `[0, 1, 2, 1]`.
pub type AnonymousWalk = Vec<u8>;

/// Convert a concrete random walk (node ids) into its anonymous form.
///
/// ```
/// use mvgnn_graph::anonymous_walk;
/// assert_eq!(anonymous_walk(&[7, 3, 9, 3]), vec![0, 1, 2, 1]);
/// ```
pub fn anonymous_walk(walk: &[u32]) -> AnonymousWalk {
    let mut seen: Vec<u32> = Vec::with_capacity(walk.len());
    let mut out = Vec::with_capacity(walk.len());
    for &v in walk {
        let idx = match seen.iter().position(|&s| s == v) {
            Some(i) => i,
            None => {
                seen.push(v);
                seen.len() - 1
            }
        };
        out.push(u8::try_from(idx).expect("anonymous walk index exceeds u8"));
    }
    out
}

/// Enumerate every anonymous walk with `len` nodes in lexicographic order.
///
/// Valid anonymous walks are restricted-growth strings starting at 0 where
/// consecutive labels differ (a walk step always moves to a neighbour):
/// `a₁ = 0`, `aᵢ₊₁ ≤ max(a₁..aᵢ) + 1`, `aᵢ₊₁ ≠ aᵢ`.
pub fn enumerate_anonymous_walks(len: usize) -> Vec<AnonymousWalk> {
    let mut out = Vec::new();
    if len == 0 {
        return out;
    }
    let mut cur: AnonymousWalk = vec![0];
    fn rec(cur: &mut AnonymousWalk, len: usize, out: &mut Vec<AnonymousWalk>) {
        if cur.len() == len {
            out.push(cur.clone());
            return;
        }
        let max = *cur.iter().max().expect("non-empty");
        let last = *cur.last().expect("non-empty");
        for next in 0..=max + 1 {
            if next != last {
                cur.push(next);
                rec(cur, len, out);
                cur.pop();
            }
        }
    }
    rec(&mut cur, len, &mut out);
    out
}

/// Vocabulary of anonymous walks of a fixed length, with O(1)-ish id lookup.
#[derive(Debug, Clone)]
pub struct AwVocab {
    len: usize,
    walks: Vec<AnonymousWalk>,
    index: std::collections::HashMap<AnonymousWalk, u32>,
}

impl AwVocab {
    /// Build the vocabulary for walks of `len` nodes.
    pub fn new(len: usize) -> Self {
        let walks = enumerate_anonymous_walks(len);
        let index = walks
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i as u32))
            .collect();
        Self { len, walks, index }
    }

    /// Walk length (node count) of this vocabulary.
    pub fn walk_len(&self) -> usize {
        self.len
    }

    /// Vocabulary size.
    pub fn size(&self) -> usize {
        self.walks.len()
    }

    /// Id of an anonymous walk, if it belongs to this vocabulary.
    pub fn id(&self, aw: &AnonymousWalk) -> Option<u32> {
        self.index.get(aw).copied()
    }

    /// The anonymous walk with the given id.
    pub fn walk(&self, id: u32) -> &AnonymousWalk {
        &self.walks[id as usize]
    }
}

/// Configuration for the per-node walk sampler.
#[derive(Debug, Clone, Copy)]
pub struct WalkConfig {
    /// Number of nodes per walk (paper's `l`).
    pub walk_len: usize,
    /// Walks sampled per node (paper's `γ`).
    pub walks_per_node: usize,
    /// Master seed; per-node streams are derived from it.
    pub seed: u64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self { walk_len: 4, walks_per_node: 50, seed: 0x5eed_cafe }
    }
}

/// Deterministic, parallel random-walk sampler over a CSR adjacency.
#[derive(Debug, Clone)]
pub struct WalkSampler {
    cfg: WalkConfig,
}

/// splitmix64-style mixing for per-node seed derivation.
fn mix(seed: u64, v: u64) -> u64 {
    let mut z = seed ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl WalkSampler {
    /// Create a sampler with the given configuration.
    pub fn new(cfg: WalkConfig) -> Self {
        assert!(cfg.walk_len >= 1, "walk length must be at least 1");
        Self { cfg }
    }

    /// Sampler configuration.
    pub fn config(&self) -> WalkConfig {
        self.cfg
    }

    /// Sample one walk of `walk_len` nodes starting at `start`.
    ///
    /// A walk that reaches a node with no neighbours stays there (the
    /// anonymous form then repeats a label, which `anonymous_walk` encodes
    /// as the last index again — callers over vocabularies treat those as
    /// out-of-vocabulary and renormalise). To keep every sampled walk
    /// in-vocabulary we instead *truncate-and-pad by bouncing back*: a stuck
    /// walk steps back to its previous node, which is always a neighbour.
    pub fn sample_walk(&self, csr: &Csr, start: u32, rng: &mut StdRng) -> Vec<u32> {
        let mut walk = Vec::with_capacity(self.cfg.walk_len);
        walk.push(start);
        while walk.len() < self.cfg.walk_len {
            let cur = *walk.last().expect("walk non-empty");
            let nbrs = csr.neighbors(cur);
            if nbrs.is_empty() {
                // Isolated node: the only honest encoding is to stay.
                walk.push(cur);
            } else {
                let next = nbrs[rng.random_range(0..nbrs.len())];
                walk.push(next);
            }
        }
        walk
    }

    /// Per-node empirical anonymous-walk distribution (paper Eq. 3).
    ///
    /// Returns a dense row-major `[n, vocab.size()]` matrix of f32
    /// probabilities. Rows sum to 1 for nodes whose walks are all
    /// in-vocabulary; walks that fall out of vocabulary (only possible for
    /// isolated nodes that self-repeat) put their mass on the all-zero walk.
    pub fn node_distributions(&self, csr: &Csr, vocab: &AwVocab) -> Vec<f32> {
        assert_eq!(vocab.walk_len(), self.cfg.walk_len, "vocabulary/walk length mismatch");
        let n = csr.node_count();
        let vsize = vocab.size();
        let gamma = self.cfg.walks_per_node;
        let rows: Vec<Vec<f32>> = (0..n as u32)
            .into_par_iter()
            .map(|v| {
                let mut rng = StdRng::seed_from_u64(mix(self.cfg.seed, v as u64));
                let mut row = vec![0.0f32; vsize];
                for _ in 0..gamma {
                    let walk = self.sample_walk(csr, v, &mut rng);
                    let aw = anonymous_walk(&walk);
                    let id = vocab.id(&aw).unwrap_or(0);
                    row[id as usize] += 1.0;
                }
                let inv = 1.0 / gamma as f32;
                for x in &mut row {
                    *x *= inv;
                }
                row
            })
            .collect();
        let mut out = Vec::with_capacity(n * vsize);
        for row in rows {
            out.extend_from_slice(&row);
        }
        out
    }

    /// Graph-level mean distribution (paper Eq. 4).
    pub fn graph_distribution(&self, csr: &Csr, vocab: &AwVocab) -> Vec<f32> {
        let n = csr.node_count();
        let vsize = vocab.size();
        let node_dists = self.node_distributions(csr, vocab);
        let mut mean = vec![0.0f32; vsize];
        if n == 0 {
            return mean;
        }
        for v in 0..n {
            for j in 0..vsize {
                mean[j] += node_dists[v * vsize + j];
            }
        }
        let inv = 1.0 / n as f32;
        for x in &mut mean {
            *x *= inv;
        }
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anonymous_walk_first_occurrence_indices() {
        assert_eq!(anonymous_walk(&[7, 3, 9, 3]), vec![0, 1, 2, 1]);
        assert_eq!(anonymous_walk(&[1, 2, 3, 4, 2]), vec![0, 1, 2, 3, 1]);
        assert_eq!(anonymous_walk(&[5]), vec![0]);
        assert_eq!(anonymous_walk(&[]), Vec::<u8>::new());
    }

    #[test]
    fn enumeration_counts_match_known_values() {
        // Known counts of anonymous walks with distinct consecutive labels:
        // len 1: [0]                            -> 1
        // len 2: [0,1]                          -> 1
        // len 3: 010, 012                       -> 2
        // len 4: 0101,0102,0120,0121,0123       -> 5
        // len 5:                                -> 15 (Bell number growth)
        assert_eq!(enumerate_anonymous_walks(1).len(), 1);
        assert_eq!(enumerate_anonymous_walks(2).len(), 1);
        assert_eq!(enumerate_anonymous_walks(3).len(), 2);
        assert_eq!(enumerate_anonymous_walks(4).len(), 5);
        assert_eq!(enumerate_anonymous_walks(5).len(), 15);
        assert_eq!(enumerate_anonymous_walks(6).len(), 52);
    }

    #[test]
    fn enumeration_contains_only_valid_strings() {
        for aw in enumerate_anonymous_walks(5) {
            assert_eq!(aw[0], 0);
            let mut max = 0u8;
            for i in 1..aw.len() {
                assert_ne!(aw[i], aw[i - 1], "consecutive repeat in {aw:?}");
                assert!(aw[i] <= max + 1, "growth violation in {aw:?}");
                max = max.max(aw[i]);
            }
        }
    }

    #[test]
    fn vocab_roundtrip() {
        let vocab = AwVocab::new(4);
        assert_eq!(vocab.size(), 5);
        for id in 0..vocab.size() as u32 {
            let w = vocab.walk(id).clone();
            assert_eq!(vocab.id(&w), Some(id));
        }
        assert_eq!(vocab.id(&vec![0, 0, 1, 2]), None);
    }

    #[test]
    fn sampled_walks_follow_edges() {
        // Path graph 0-1-2-3 (undirected arcs both ways).
        let csr = Csr::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]);
        let sampler = WalkSampler::new(WalkConfig { walk_len: 6, walks_per_node: 1, seed: 42 });
        let mut rng = StdRng::seed_from_u64(7);
        for start in 0..4u32 {
            let walk = sampler.sample_walk(&csr, start, &mut rng);
            assert_eq!(walk.len(), 6);
            for pair in walk.windows(2) {
                assert!(csr.contains_edge(pair[0], pair[1]), "non-edge step in {walk:?}");
            }
        }
    }

    #[test]
    fn isolated_node_stays_put() {
        let csr = Csr::from_edges(2, &[]);
        let sampler = WalkSampler::new(WalkConfig { walk_len: 4, walks_per_node: 1, seed: 1 });
        let mut rng = StdRng::seed_from_u64(1);
        let walk = sampler.sample_walk(&csr, 0, &mut rng);
        assert_eq!(walk, vec![0, 0, 0, 0]);
    }

    #[test]
    fn node_distributions_are_normalised_and_deterministic() {
        let csr = Csr::from_edges(
            5,
            &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2), (3, 4), (4, 3), (4, 0), (0, 4)],
        );
        let vocab = AwVocab::new(4);
        let sampler =
            WalkSampler::new(WalkConfig { walk_len: 4, walks_per_node: 64, seed: 99 });
        let d1 = sampler.node_distributions(&csr, &vocab);
        let d2 = sampler.node_distributions(&csr, &vocab);
        assert_eq!(d1, d2, "sampling must be deterministic under a fixed seed");
        for v in 0..5 {
            let row = &d1[v * vocab.size()..(v + 1) * vocab.size()];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {v} sums to {sum}");
        }
    }

    #[test]
    fn cycle_vs_path_distributions_differ() {
        // A triangle revisits nodes quickly; a long path rarely does. Their
        // anonymous-walk distributions must be distinguishable — this is the
        // premise of the structural view.
        let tri = Csr::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)]);
        let path = Csr::from_edges(
            6,
            &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2), (3, 4), (4, 3), (4, 5), (5, 4)],
        );
        let vocab = AwVocab::new(4);
        let sampler =
            WalkSampler::new(WalkConfig { walk_len: 4, walks_per_node: 256, seed: 3 });
        let dt = sampler.graph_distribution(&tri, &vocab);
        let dp = sampler.graph_distribution(&path, &vocab);
        let l1: f32 = dt.iter().zip(&dp).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 > 0.2, "triangle and path should separate, l1 = {l1}");
    }

    #[test]
    fn graph_distribution_empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        let vocab = AwVocab::new(4);
        let sampler = WalkSampler::new(WalkConfig::default());
        let d = sampler.graph_distribution(&csr, &vocab);
        assert_eq!(d.len(), vocab.size());
        assert!(d.iter().all(|&x| x == 0.0));
    }
}
