//! Adjacency-list directed graph with typed node and edge payloads.
//!
//! `DiGraph` is the mutable builder representation used while assembling
//! program execution graphs; hot traversal code should snapshot it into a
//! [`crate::Csr`] first.

use serde::{Deserialize, Serialize};

/// Index of a node inside a [`DiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Index of an edge inside a [`DiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Convert to a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Convert to a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct EdgeRecord<E> {
    src: NodeId,
    dst: NodeId,
    weight: E,
}

/// A directed multigraph: parallel edges and self-loops are allowed, which
/// matters because a program execution graph can carry both a RAW and a WAR
/// dependence between the same pair of computational units.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiGraph<N, E> {
    nodes: Vec<N>,
    edges: Vec<EdgeRecord<E>>,
    /// Outgoing edge ids per node.
    out_adj: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node.
    in_adj: Vec<Vec<EdgeId>>,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self { nodes: Vec::new(), edges: Vec::new(), out_adj: Vec::new(), in_adj: Vec::new() }
    }

    /// Create an empty graph with reserved capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out_adj: Vec::with_capacity(nodes),
            in_adj: Vec::with_capacity(nodes),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Add a node carrying `weight`, returning its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node count exceeds u32"));
        self.nodes.push(weight);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Add a directed edge `src -> dst` carrying `weight`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of bounds.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: E) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "edge source {src:?} out of bounds");
        assert!(dst.index() < self.nodes.len(), "edge target {dst:?} out of bounds");
        let id = EdgeId(u32::try_from(self.edges.len()).expect("edge count exceeds u32"));
        self.edges.push(EdgeRecord { src, dst, weight });
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        id
    }

    /// Node payload accessor.
    #[inline]
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutable node payload accessor.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Edge payload accessor.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &E {
        &self.edges[id.index()].weight
    }

    /// Mutable edge payload accessor.
    #[inline]
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut E {
        &mut self.edges[id.index()].weight
    }

    /// Endpoints `(src, dst)` of an edge.
    #[inline]
    pub fn endpoints(&self, id: EdgeId) -> (NodeId, NodeId) {
        let rec = &self.edges[id.index()];
        (rec.src, rec.dst)
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + Clone {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterator over node payloads in id order.
    pub fn node_weights(&self) -> impl ExactSizeIterator<Item = &N> {
        self.nodes.iter()
    }

    /// Outgoing edges of `n`.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_adj[n.index()].iter().copied()
    }

    /// Incoming edges of `n`.
    pub fn in_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.in_adj[n.index()].iter().copied()
    }

    /// Successor nodes of `n` (with multiplicity, in insertion order).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_adj[n.index()].iter().map(move |e| self.edges[e.index()].dst)
    }

    /// Predecessor nodes of `n` (with multiplicity, in insertion order).
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_adj[n.index()].iter().map(move |e| self.edges[e.index()].src)
    }

    /// Out-degree of `n`.
    #[inline]
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out_adj[n.index()].len()
    }

    /// In-degree of `n`.
    #[inline]
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.in_adj[n.index()].len()
    }

    /// True if there is at least one edge `src -> dst`.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.successors(src).any(|s| s == dst)
    }

    /// Map node and edge payloads into a new graph with identical topology.
    pub fn map<N2, E2>(
        &self,
        mut nf: impl FnMut(NodeId, &N) -> N2,
        mut ef: impl FnMut(EdgeId, &E) -> E2,
    ) -> DiGraph<N2, E2> {
        DiGraph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| nf(NodeId(i as u32), n))
                .collect(),
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, rec)| EdgeRecord {
                    src: rec.src,
                    dst: rec.dst,
                    weight: ef(EdgeId(i as u32), &rec.weight),
                })
                .collect(),
            out_adj: self.out_adj.clone(),
            in_adj: self.in_adj.clone(),
        }
    }

    /// Extract the induced subgraph over `keep` (in the given order).
    ///
    /// Returns the subgraph and the mapping `old NodeId -> new NodeId`.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (DiGraph<N, E>, Vec<Option<NodeId>>)
    where
        N: Clone,
        E: Clone,
    {
        let mut remap: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut sub = DiGraph::with_capacity(keep.len(), keep.len() * 2);
        for &old in keep {
            let new = sub.add_node(self.nodes[old.index()].clone());
            remap[old.index()] = Some(new);
        }
        for (i, rec) in self.edges.iter().enumerate() {
            let _ = i;
            if let (Some(s), Some(d)) = (remap[rec.src.index()], remap[rec.dst.index()]) {
                sub.add_edge(s, d, rec.weight.clone());
            }
        }
        (sub, remap)
    }

    /// Undirected neighbour list per node (successors ∪ predecessors,
    /// deduplicated, self-loops removed). This is the view random walks use:
    /// anonymous-walk structure is about local shape, not edge direction.
    pub fn undirected_neighbors(&self) -> Vec<Vec<u32>> {
        let mut nbrs: Vec<Vec<u32>> = vec![Vec::new(); self.nodes.len()];
        for rec in &self.edges {
            if rec.src != rec.dst {
                nbrs[rec.src.index()].push(rec.dst.0);
                nbrs[rec.dst.index()].push(rec.src.0);
            }
        }
        for list in &mut nbrs {
            list.sort_unstable();
            list.dedup();
        }
        nbrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph<&'static str, u32> {
        // a -> b, a -> c, b -> d, c -> d
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 2);
        g.add_edge(b, d, 3);
        g.add_edge(c, d, 4);
        g
    }

    #[test]
    fn add_and_count() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(!g.is_empty());
        assert!(DiGraph::<(), ()>::new().is_empty());
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = diamond();
        let a = NodeId(0);
        let d = NodeId(3);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![NodeId(1), NodeId(2)]);
        assert_eq!(g.predecessors(d).collect::<Vec<_>>(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn parallel_edges_and_self_loops_allowed() {
        let mut g: DiGraph<(), &str> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, "raw");
        g.add_edge(a, b, "war");
        g.add_edge(a, a, "self");
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(a), 3);
        assert_eq!(g.in_degree(b), 2);
        assert!(g.has_edge(a, a));
    }

    #[test]
    fn endpoints_and_payloads() {
        let g = diamond();
        let e = EdgeId(2);
        assert_eq!(g.endpoints(e), (NodeId(1), NodeId(3)));
        assert_eq!(*g.edge(e), 3);
        assert_eq!(*g.node(NodeId(2)), "c");
    }

    #[test]
    fn map_preserves_topology() {
        let g = diamond();
        let m = g.map(|id, n| format!("{}{}", n, id.0), |_, &e| e as f64);
        assert_eq!(m.node_count(), 4);
        assert_eq!(m.edge_count(), 4);
        assert_eq!(m.node(NodeId(1)), "b1");
        assert_eq!(*m.edge(EdgeId(3)), 4.0);
        assert_eq!(m.successors(NodeId(0)).count(), 2);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = diamond();
        let (sub, remap) = g.induced_subgraph(&[NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(sub.node_count(), 3);
        // edges a->b and b->d survive; a->c and c->d are dropped.
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(remap[2], None);
        assert_eq!(remap[0], Some(NodeId(0)));
        assert!(sub.has_edge(NodeId(0), NodeId(1)));
        assert!(sub.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn undirected_neighbors_dedup_and_no_self_loops() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        g.add_edge(a, a, ());
        let nbrs = g.undirected_neighbors();
        assert_eq!(nbrs[0], vec![1]);
        assert_eq!(nbrs[1], vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn edge_to_missing_node_panics() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId(7), ());
    }
}
