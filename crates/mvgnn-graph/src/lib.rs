//! # mvgnn-graph — graph substrate for parallelism discovery
//!
//! Directed graphs with typed node/edge payloads, a compressed sparse row
//! (CSR) view for tight traversal loops, classic graph algorithms
//! (shortest paths, longest path on DAGs, SCC, topological order), random
//! walk sampling, and *anonymous walk* machinery (Ivanov & Burnaev, ICML'18)
//! used by the structural view of the MV-GNN model.
//!
//! All sampling entry points are deterministic given a seed and are
//! parallelised with rayon where the work is per-node independent.

pub mod algo;
pub mod csr;
pub mod digraph;
pub mod graphlets;
pub mod walks;

pub use csr::Csr;
pub use digraph::{DiGraph, EdgeId, NodeId};
pub use walks::{
    anonymous_walk, enumerate_anonymous_walks, AnonymousWalk, AwVocab, WalkConfig, WalkSampler,
};
