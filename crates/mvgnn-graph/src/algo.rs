//! Classic graph algorithms used across the pipeline: BFS distances,
//! topological order, longest path on DAGs (critical path length),
//! Tarjan SCC, and weakly connected components.

use crate::csr::Csr;

/// BFS hop distances from `src`; `u32::MAX` marks unreachable nodes.
pub fn bfs_distances(csr: &Csr, src: u32) -> Vec<u32> {
    let n = csr.node_count();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &t in csr.neighbors(v) {
            if dist[t as usize] == u32::MAX {
                dist[t as usize] = dv + 1;
                queue.push_back(t);
            }
        }
    }
    dist
}

/// Kahn topological order. Returns `None` if the graph has a cycle.
pub fn topological_order(csr: &Csr) -> Option<Vec<u32>> {
    let n = csr.node_count();
    let mut indeg = vec![0u32; n];
    for v in 0..n as u32 {
        for &t in csr.neighbors(v) {
            indeg[t as usize] += 1;
        }
    }
    let mut stack: Vec<u32> =
        (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = stack.pop() {
        order.push(v);
        for &t in csr.neighbors(v) {
            indeg[t as usize] -= 1;
            if indeg[t as usize] == 0 {
                stack.push(t);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Length (in edges) of the longest path in a DAG — the *critical path*
/// through a dependence graph. Cycles are handled by contracting SCCs
/// first: each non-trivial SCC contributes its node count to the path it
/// lies on (a chain of mutually dependent instructions must serialise).
pub fn critical_path_len(csr: &Csr) -> u32 {
    let n = csr.node_count();
    if n == 0 {
        return 0;
    }
    let scc = tarjan_scc(csr);
    let ncomp = scc.component_count;
    // Component sizes; component DAG edges.
    let mut size = vec![0u32; ncomp];
    for v in 0..n {
        size[scc.component_of[v] as usize] += 1;
    }
    let mut cedges: Vec<(u32, u32)> = Vec::new();
    for v in 0..n as u32 {
        let cv = scc.component_of[v as usize];
        for &t in csr.neighbors(v) {
            let ct = scc.component_of[t as usize];
            if cv != ct {
                cedges.push((cv, ct));
            }
        }
    }
    cedges.sort_unstable();
    cedges.dedup();
    let cdag = Csr::from_edges(ncomp, &cedges);
    let order = topological_order(&cdag).expect("SCC condensation is acyclic");
    // Longest weighted path where each component weighs `size - 1` internal
    // edges plus 1 per crossing edge.
    let mut best = vec![0u32; ncomp];
    for &c in &order {
        best[c as usize] = best[c as usize].max(size[c as usize] - 1);
    }
    let mut overall = 0u32;
    for &c in &order {
        let b = best[c as usize];
        overall = overall.max(b);
        for &t in cdag.neighbors(c) {
            let cand = b + 1 + (size[t as usize] - 1);
            if cand > best[t as usize] {
                best[t as usize] = cand;
            }
        }
    }
    overall
}

/// Result of Tarjan's strongly connected components.
#[derive(Debug, Clone)]
pub struct SccResult {
    /// Component index per node; components are numbered in reverse
    /// topological order of the condensation (standard Tarjan output).
    pub component_of: Vec<u32>,
    /// Total number of components.
    pub component_count: usize,
}

impl SccResult {
    /// Nodes grouped by component.
    pub fn groups(&self) -> Vec<Vec<u32>> {
        let mut groups = vec![Vec::new(); self.component_count];
        for (v, &c) in self.component_of.iter().enumerate() {
            groups[c as usize].push(v as u32);
        }
        groups
    }

    /// True if node `v` lies on a cycle (its SCC has >1 node or a self-loop
    /// is not visible here — callers needing self-loop cycles check edges).
    pub fn in_nontrivial_scc(&self, v: u32) -> bool {
        self.component_of.iter().filter(|&&c| c == self.component_of[v as usize]).count() > 1
    }
}

/// Iterative Tarjan SCC (explicit stack; safe for deep graphs).
pub fn tarjan_scc(csr: &Csr) -> SccResult {
    let n = csr.node_count();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component_of = vec![UNSET; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut ncomp = 0u32;

    // Explicit DFS frames: (node, next-neighbour cursor).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            let nbrs = csr.neighbors(v);
            if *cursor < nbrs.len() {
                let w = nbrs[*cursor];
                *cursor += 1;
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] =
                        lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        component_of[w as usize] = ncomp;
                        if w == v {
                            break;
                        }
                    }
                    ncomp += 1;
                }
            }
        }
    }
    SccResult { component_of, component_count: ncomp as usize }
}

/// Weakly connected components (direction ignored). Returns `(labels, count)`.
pub fn weak_components(csr: &Csr) -> (Vec<u32>, usize) {
    let n = csr.node_count();
    let rev = csr.transpose();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as u32 {
        if label[s as usize] != u32::MAX {
            continue;
        }
        label[s as usize] = count;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &t in csr.neighbors(v).iter().chain(rev.neighbors(v)) {
                if label[t as usize] == u32::MAX {
                    label[t as usize] = count;
                    queue.push_back(t);
                }
            }
        }
        count += 1;
    }
    (label, count as usize)
}

/// Maximum anti-chain width proxy for a dependence DAG: the largest number
/// of nodes at the same BFS depth from the set of sources. Used by the
/// estimated-speedup (ESP) heuristic together with the critical path.
pub fn max_level_width(csr: &Csr) -> u32 {
    let n = csr.node_count();
    if n == 0 {
        return 0;
    }
    let Some(order) = topological_order(csr) else {
        // Cyclic: conservative width 1 (serialised).
        return 1;
    };
    let mut level = vec![0u32; n];
    for &v in &order {
        for &t in csr.neighbors(v) {
            level[t as usize] = level[t as usize].max(level[v as usize] + 1);
        }
    }
    let max_level = level.iter().copied().max().unwrap_or(0);
    let mut width = vec![0u32; max_level as usize + 1];
    for &l in &level {
        width[l as usize] += 1;
    }
    width.into_iter().max().unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dag() -> Csr {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 4
        Csr::from_edges(5, &[(0, 1), (1, 3), (0, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn bfs_basic() {
        let d = bfs_distances(&dag(), 0);
        assert_eq!(d, vec![0, 1, 1, 2, 3]);
        let d2 = bfs_distances(&dag(), 3);
        assert_eq!(d2[0], u32::MAX);
        assert_eq!(d2[4], 1);
    }

    #[test]
    fn topo_order_valid() {
        let csr = dag();
        let order = topological_order(&csr).unwrap();
        let pos: Vec<usize> =
            (0..5).map(|v| order.iter().position(|&x| x == v as u32).unwrap()).collect();
        for v in 0..5u32 {
            for &t in csr.neighbors(v) {
                assert!(pos[v as usize] < pos[t as usize]);
            }
        }
    }

    #[test]
    fn topo_order_detects_cycle() {
        let csr = Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(topological_order(&csr).is_none());
    }

    #[test]
    fn critical_path_on_dag() {
        assert_eq!(critical_path_len(&dag()), 3);
        let empty = Csr::from_edges(0, &[]);
        assert_eq!(critical_path_len(&empty), 0);
        let single = Csr::from_edges(1, &[]);
        assert_eq!(critical_path_len(&single), 0);
    }

    #[test]
    fn critical_path_with_cycle_counts_scc_size() {
        // 0 -> (1 <-> 2) -> 3 : cycle of 2 contributes 1 internal edge.
        let csr = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        assert_eq!(critical_path_len(&csr), 3);
    }

    #[test]
    fn tarjan_finds_components() {
        let csr = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let scc = tarjan_scc(&csr);
        assert_eq!(scc.component_count, 3);
        assert_eq!(scc.component_of[0], scc.component_of[1]);
        assert_eq!(scc.component_of[1], scc.component_of[2]);
        assert_ne!(scc.component_of[2], scc.component_of[3]);
        assert!(scc.in_nontrivial_scc(0));
        assert!(!scc.in_nontrivial_scc(4));
    }

    #[test]
    fn tarjan_deep_chain_no_overflow() {
        let n = 200_000;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|v| (v as u32, v as u32 + 1)).collect();
        let csr = Csr::from_edges(n, &edges);
        let scc = tarjan_scc(&csr);
        assert_eq!(scc.component_count, n);
    }

    #[test]
    fn weak_components_counts() {
        let csr = Csr::from_edges(5, &[(0, 1), (2, 3)]);
        let (labels, count) = weak_components(&csr);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[4]);
    }

    #[test]
    fn level_width_of_diamond() {
        // Diamond: widest level has 2 nodes.
        let csr = Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(max_level_width(&csr), 2);
        // Cycle collapses to width 1.
        let cyc = Csr::from_edges(2, &[(0, 1), (1, 0)]);
        assert_eq!(max_level_width(&cyc), 1);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn bfs_on_empty_and_singleton() {
        let single = Csr::from_edges(1, &[]);
        assert_eq!(bfs_distances(&single, 0), vec![0]);
        let (labels, count) = weak_components(&single);
        assert_eq!((labels, count), (vec![0], 1));
    }

    #[test]
    fn self_loop_breaks_topo_order() {
        let csr = Csr::from_edges(2, &[(0, 0), (0, 1)]);
        assert!(topological_order(&csr).is_none());
    }

    #[test]
    fn critical_path_counts_longest_not_first() {
        // Two routes 0->3: direct edge vs 3-edge chain.
        let csr = Csr::from_edges(4, &[(0, 3), (0, 1), (1, 2), (2, 3)]);
        assert_eq!(critical_path_len(&csr), 3);
    }

    #[test]
    fn scc_condensation_path_through_two_cycles() {
        // (0<->1) -> (2<->3): two 2-cycles in sequence.
        let csr = Csr::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let scc = tarjan_scc(&csr);
        assert_eq!(scc.component_count, 2);
        // Path: 1 internal edge + 1 crossing + 1 internal = 3.
        assert_eq!(critical_path_len(&csr), 3);
    }

    #[test]
    fn width_of_star_graph() {
        // Hub feeding 5 leaves: all leaves at depth 1.
        let edges: Vec<(u32, u32)> = (1..6).map(|t| (0u32, t)).collect();
        let csr = Csr::from_edges(6, &edges);
        assert_eq!(max_level_width(&csr), 5);
        assert_eq!(critical_path_len(&csr), 1);
    }

    #[test]
    fn groups_partition_nodes() {
        let csr = Csr::from_edges(5, &[(0, 1), (1, 0), (2, 3)]);
        let scc = tarjan_scc(&csr);
        let groups = scc.groups();
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
        assert_eq!(groups.len(), scc.component_count);
    }
}
