//! Compressed sparse row snapshot of a directed graph.
//!
//! Traversal-heavy code (walk sampling, GCN message passing) runs over a
//! `Csr` rather than the pointer-chasing adjacency lists of
//! [`crate::DiGraph`]. The CSR stores out-neighbours contiguously; an
//! optional transposed copy serves in-neighbour queries.

use crate::digraph::DiGraph;
use serde::{Deserialize, Serialize};

/// Immutable CSR adjacency. Neighbour lists are sorted for deterministic
/// iteration and binary-search membership tests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    /// `offsets.len() == n + 1`; neighbours of `v` live in
    /// `targets[offsets[v]..offsets[v + 1]]`.
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Build from explicit edge pairs over `n` nodes.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u32; n];
        for &(s, _) in edges {
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; edges.len()];
        for &(s, t) in edges {
            let c = &mut cursor[s as usize];
            targets[*c as usize] = t;
            *c += 1;
        }
        for v in 0..n {
            targets[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        Self { offsets, targets }
    }

    /// Snapshot the *directed* out-adjacency of `g`.
    pub fn from_digraph<N, E>(g: &DiGraph<N, E>) -> Self {
        let edges: Vec<(u32, u32)> =
            g.edge_ids().map(|e| {
                let (s, d) = g.endpoints(e);
                (s.0, d.0)
            }).collect();
        Self::from_edges(g.node_count(), &edges)
    }

    /// Snapshot the *undirected* adjacency of `g` (dedup, no self-loops):
    /// the view used for anonymous-walk sampling.
    pub fn undirected_from_digraph<N, E>(g: &DiGraph<N, E>) -> Self {
        let nbrs = g.undirected_neighbors();
        let mut offsets = Vec::with_capacity(nbrs.len() + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for list in &nbrs {
            targets.extend_from_slice(list);
            offsets.push(targets.len() as u32);
        }
        Self { offsets, targets }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Sorted neighbour slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Membership test via binary search.
    pub fn contains_edge(&self, s: u32, t: u32) -> bool {
        self.neighbors(s).binary_search(&t).is_ok()
    }

    /// Disjoint union of graphs: nodes of part `i` are renumbered by the
    /// sum of the preceding parts' node counts, giving the block-diagonal
    /// adjacency that packs a mini-batch of graphs into one traversal
    /// structure.
    pub fn block_diag(parts: &[&Csr]) -> Csr {
        let n: usize = parts.iter().map(|p| p.node_count()).sum();
        let e: usize = parts.iter().map(|p| p.edge_count()).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(e);
        offsets.push(0u32);
        let mut node_off = 0u32;
        let mut edge_off = 0u32;
        for p in parts {
            for &o in &p.offsets[1..] {
                offsets.push(o + edge_off);
            }
            for &t in &p.targets {
                targets.push(t + node_off);
            }
            node_off += p.node_count() as u32;
            edge_off += p.edge_count() as u32;
        }
        Csr { offsets, targets }
    }

    /// Transposed CSR (in-neighbours become out-neighbours).
    pub fn transpose(&self) -> Csr {
        let n = self.node_count();
        let mut edges = Vec::with_capacity(self.edge_count());
        for v in 0..n as u32 {
            for &t in self.neighbors(v) {
                edges.push((t, v));
            }
        }
        Csr::from_edges(n, &edges)
    }

    /// Row-normalised edge list `(src, dst, 1/deg(src))` — the propagation
    /// operator D⁻¹A used by mean-aggregation GNN layers.
    pub fn row_normalized(&self) -> Vec<(u32, u32, f32)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for v in 0..self.node_count() as u32 {
            let d = self.degree(v);
            if d == 0 {
                continue;
            }
            let w = 1.0 / d as f32;
            for &t in self.neighbors(v) {
                out.push((v, t, w));
            }
        }
        out
    }

    /// Symmetric-normalised self-looped operator
    /// `Â = D̃^{-1/2} (A + I) D̃^{-1/2}` as an edge list, the GCN propagation
    /// matrix of Kipf & Welling. Degrees are computed on `A + I`.
    pub fn gcn_normalized(&self) -> Vec<(u32, u32, f32)> {
        let n = self.node_count();
        let mut deg = vec![1.0f32; n]; // self loop contributes 1
        for v in 0..n as u32 {
            deg[v as usize] += self.degree(v) as f32;
        }
        let inv_sqrt: Vec<f32> = deg.iter().map(|&d| 1.0 / d.sqrt()).collect();
        let mut out = Vec::with_capacity(self.edge_count() + n);
        for v in 0..n as u32 {
            out.push((v, v, inv_sqrt[v as usize] * inv_sqrt[v as usize]));
            for &t in self.neighbors(v) {
                out.push((v, t, inv_sqrt[v as usize] * inv_sqrt[t as usize]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;

    fn chain_csr() -> Csr {
        // 0 -> 1 -> 2 -> 3 plus 0 -> 2
        Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2)])
    }

    #[test]
    fn from_edges_builds_sorted_rows() {
        let c = Csr::from_edges(3, &[(0, 2), (0, 1), (2, 0)]);
        assert_eq!(c.neighbors(0), &[1, 2]);
        assert_eq!(c.neighbors(1), &[] as &[u32]);
        assert_eq!(c.neighbors(2), &[0]);
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.edge_count(), 3);
    }

    #[test]
    fn membership_and_degree() {
        let c = chain_csr();
        assert!(c.contains_edge(0, 2));
        assert!(!c.contains_edge(2, 0));
        assert_eq!(c.degree(0), 2);
        assert_eq!(c.degree(3), 0);
    }

    #[test]
    fn transpose_roundtrip() {
        let c = chain_csr();
        let t = c.transpose();
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.neighbors(0), &[] as &[u32]);
        assert_eq!(t.transpose(), c);
    }

    #[test]
    fn from_digraph_matches_manual() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, c, ());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        let csr = Csr::from_digraph(&g);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[2]);
    }

    #[test]
    fn undirected_view_symmetric() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        let csr = Csr::undirected_from_digraph(&g);
        assert_eq!(csr.neighbors(0), &[1]);
        assert_eq!(csr.neighbors(1), &[0]);
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let c = chain_csr();
        let entries = c.row_normalized();
        let mut row_sums = [0.0f32; 4];
        for (s, _, w) in entries {
            row_sums[s as usize] += w;
        }
        assert!((row_sums[0] - 1.0).abs() < 1e-6);
        assert!((row_sums[1] - 1.0).abs() < 1e-6);
        assert_eq!(row_sums[3], 0.0); // sink has no outgoing mass
    }

    #[test]
    fn block_diag_offsets_neighbours() {
        let a = Csr::from_edges(2, &[(0, 1)]);
        let b = Csr::from_edges(3, &[(0, 2), (2, 1)]);
        let bd = Csr::block_diag(&[&a, &b]);
        assert_eq!(bd.node_count(), 5);
        assert_eq!(bd.edge_count(), 3);
        assert_eq!(bd.neighbors(0), &[1]);
        assert_eq!(bd.neighbors(2), &[4]); // b's 0 -> 2 shifted by 2
        assert_eq!(bd.neighbors(4), &[3]);
        assert!(!bd.contains_edge(1, 2), "no cross-part edges");
    }

    #[test]
    fn block_diag_with_empty_part() {
        let a = Csr::from_edges(0, &[]);
        let b = Csr::from_edges(2, &[(1, 0)]);
        let bd = Csr::block_diag(&[&a, &b]);
        assert_eq!(bd.node_count(), 2);
        assert_eq!(bd.neighbors(1), &[0]);
    }

    #[test]
    fn gcn_normalized_is_symmetric_on_undirected_input() {
        // undirected edge 0-1 given as both arcs
        let c = Csr::from_edges(2, &[(0, 1), (1, 0)]);
        let entries = c.gcn_normalized();
        // entries: (0,0), (0,1), (1,1), (1,0) with deg=2 each -> all 0.5
        for (_, _, w) in &entries {
            assert!((w - 0.5).abs() < 1e-6);
        }
        assert_eq!(entries.len(), 4);
    }
}
