//! Property-based soundness of the parallelization planner against the
//! interpreting profiler and the generator's constructive labels, with
//! the adversarial kernel families as the stress space.
//!
//! The contracts, checked over random seeds and sizes:
//!
//! - a *proved* plan's binary claim ([`LoopPlan::proved_binary`]) must
//!   equal the generator's ground-truth label (the lint auditor's
//!   rule C, here over the wilder template space);
//! - a proved-parallel plan (`DoAll`/`Reduction`) must not coexist with
//!   an observed loop-carried dependence outside the oracle's excused
//!   reduction chains (rule A lifted to plans);
//! - a `Doacross` plan's `min_distance` must never exceed an observed
//!   carried distance — the pipeline schedule it claims must be valid
//!   for the dependences the interpreter actually saw;
//! - the rendered pragma must match the plan's shape.

use mvgnn_analyze::{analyze_loop, plan_from_report, LoopPlan, Plan, Verdict};
use mvgnn_dataset::{build_kernel, KernelKind};
use mvgnn_ir::Module;
use mvgnn_profiler::profile_module;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The four adversarial families' namesake templates plus their
/// regular-family control group.
const STRESS_KINDS: [KernelKind; 7] = [
    KernelKind::IndirectGatherReduction,
    KernelKind::PointerChase,
    KernelKind::TriangularCopy,
    KernelKind::MultiDistanceRecurrence,
    KernelKind::IndirectGather,
    KernelKind::TriangularSolve,
    KernelKind::DistanceRecurrence,
];

fn pragma_matches_plan(p: &LoopPlan) -> bool {
    match (&p.plan, p.verdict) {
        (Plan::DoAll { .. } | Plan::Reduction { .. }, _) => {
            p.pragma.starts_with("#pragma omp parallel for")
        }
        (Plan::Doacross { .. }, _) => p.pragma.contains("depend(sink:"),
        (Plan::Serial { .. }, Verdict::ProvablyDependent) => p.pragma.starts_with("// serial:"),
        (Plan::Serial { .. }, _) => p.pragma.starts_with("// undecided:"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every loop of every stress template, any seed and size: proved
    /// plans restate the constructive label, parallel proofs survive
    /// the observed dependence graph, and pragmas match their plan.
    #[test]
    fn proved_plans_are_sound_on_the_stress_families(
        kind_idx in 0usize..STRESS_KINDS.len(),
        seed in any::<u64>(),
        size in 4i64..20,
    ) {
        let kind = STRESS_KINDS[kind_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Module::new("prop");
        let (f, loops) = build_kernel(&mut m, kind, 0, size, &mut rng);
        let res = profile_module(&m, f, &[]).unwrap();
        for (l, pattern) in loops {
            let report = analyze_loop(&m, f, l);
            let plan = plan_from_report(&m, f, l, &report);
            prop_assert!(pragma_matches_plan(&plan), "{kind:?} {plan:?}");

            let truth = usize::from(pattern.is_parallelizable());
            if let Some(pb) = plan.proved_binary() {
                prop_assert_eq!(
                    pb, truth,
                    "{:?} seed {} size {}: proved `{}` contradicts {:?}",
                    kind, seed, size, plan.pragma, pattern
                );
            }

            match &plan.plan {
                Plan::DoAll { .. } | Plan::Reduction { .. }
                    if plan.verdict == Verdict::ProvablyParallel =>
                {
                    for d in res.deps.carried_by(f, l) {
                        prop_assert!(
                            report.excused.contains(&d.src)
                                && report.excused.contains(&d.dst),
                            "{kind:?} seed {seed}: parallel plan with observed carried \
                             {} {} -> {}",
                            d.kind, d.src, d.dst
                        );
                    }
                }
                Plan::Doacross { min_distance } => {
                    prop_assert!(*min_distance >= 1, "{kind:?} {plan:?}");
                    // Every proved pairwise distance bounds the schedule.
                    for fact in &plan.facts {
                        if let mvgnn_analyze::Fact::PairDependent {
                            distance: Some(d), ..
                        } = fact
                        {
                            prop_assert!(
                                *min_distance <= *d,
                                "{kind:?}: doacross sink i-{min_distance} looser than \
                                 proved distance {d}"
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// The multi-distance recurrence family is the planner's `Doacross`
    /// showcase: `a[i] = a[i-2] + a[i-5]` proves a pipeline at the
    /// tightest distance whenever the trip count covers the far pair
    /// (size > 5), and must degrade to a *proved* serial plan — never a
    /// false DOALL — when the far pair stays undecided below that.
    #[test]
    fn multi_distance_recurrence_always_plans_doacross(
        seed in any::<u64>(),
        size in 4i64..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Module::new("prop");
        let (f, loops) = build_kernel(
            &mut m, KernelKind::MultiDistanceRecurrence, 0, size, &mut rng,
        );
        prop_assert_eq!(loops.len(), 1);
        let plan = mvgnn_analyze::plan_loop(&m, f, loops[0].0);
        prop_assert!(plan.proved(), "{:?}", plan);
        if size > 5 {
            prop_assert_eq!(
                &plan.plan, &Plan::Doacross { min_distance: 2 }, "{:?}", plan.facts
            );
            prop_assert!(plan.pragma.contains("depend(sink: i-2)"), "{}", plan.pragma);
        } else {
            // Below the far distance the i-5 pair never overlaps in
            // bounds; the SIV tests cannot prove that, so the pipeline
            // claim is (correctly) withheld.
            prop_assert!(
                matches!(&plan.plan, Plan::Serial { .. }),
                "{:?}", plan.plan
            );
        }
    }
}
