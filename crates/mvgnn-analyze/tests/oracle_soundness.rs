//! Property-based soundness of the static dependence oracle against the
//! interpreting profiler: a `ProvablyParallel` verdict must never coexist
//! with an observed loop-carried dependence outside the oracle's excused
//! reduction chains, on any kernel the generator can draw.
//!
//! This is the same contract the corpus auditor (`mvgnn-bench --bin
//! lint`) enforces over the generated suites, checked here over a much
//! wilder space of offsets, strides, aliasing and guarded index shapes.

use mvgnn_analyze::{analyze_loop, Verdict};
use mvgnn_ir::inst::BinOp;
use mvgnn_ir::module::{FuncId, LoopId};
use mvgnn_ir::types::Ty;
use mvgnn_ir::{FunctionBuilder, Module};
use mvgnn_profiler::profile_module;
use proptest::prelude::*;

/// A parameterised strided kernel `dst[s·i + off] = f(src[i ± offsets…])`
/// with optional aliasing (`dst == src`) and an optional guarded index
/// reassignment (the trace-limited scatter shape).
#[derive(Debug, Clone)]
struct KernelSpec {
    offsets: Vec<i64>,
    in_place: bool,
    stride: i64,
    write_off: i64,
    guarded: bool,
    n: i64,
}

fn build(spec: &KernelSpec) -> (Module, FuncId, LoopId) {
    let max_off = spec
        .offsets
        .iter()
        .map(|o| o.abs())
        .max()
        .unwrap_or(0)
        .max(spec.write_off.abs());
    let len = ((spec.n + max_off) * spec.stride.max(1) + max_off + 1) as usize;
    let mut m = Module::new("prop");
    let src = m.add_array("src", Ty::F64, len);
    let dst = if spec.in_place { src } else { m.add_array("dst", Ty::F64, len) };
    let mut b = FunctionBuilder::new(&mut m, "main", 0);
    let lo = b.const_i64(max_off);
    let hi = b.const_i64(max_off + spec.n);
    let st = b.const_i64(1);
    let stride = b.const_i64(spec.stride);
    let woff = b.const_i64(spec.write_off);
    let off_regs: Vec<_> = spec.offsets.iter().map(|&o| b.const_i64(o)).collect();
    let thresh = b.const_f64(0.5);
    let zero_idx = b.const_i64(0);
    let l = b.for_loop(lo, hi, st, |b, iv| {
        let mut acc = b.const_f64(0.0);
        for off in &off_regs {
            let idx = b.bin(BinOp::Add, iv, *off);
            let x = b.load(src, idx);
            acc = b.bin(BinOp::Add, acc, x);
        }
        let scaled = b.bin(BinOp::Mul, iv, stride);
        let widx = b.bin(BinOp::Add, scaled, woff);
        if spec.guarded {
            // j = 0; if (acc < 0.5) j = widx; dst[j] = acc — the index
            // has two reaching definitions, so no proof may trust it.
            let c = b.bin(BinOp::CmpLt, acc, thresh);
            let j = b.copy(zero_idx);
            b.if_then(c, |b| b.copy_to(j, widx));
            b.store(dst, j, acc);
        } else {
            b.store(dst, widx, acc);
        }
    });
    let f = b.finish();
    (m, f, l)
}

fn spec_strategy() -> impl Strategy<Value = KernelSpec> {
    (
        proptest::collection::vec(-3i64..=3, 1..4),
        any::<bool>(),
        1i64..=3,
        -2i64..=2,
        any::<bool>(),
        4i64..16,
    )
        .prop_map(|(offsets, in_place, stride, write_off, guarded, n)| KernelSpec {
            offsets,
            in_place,
            stride,
            write_off,
            guarded,
            n,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The auditor's rule A, over the random kernel space: every observed
    /// carried dependence of a `ProvablyParallel` loop lies on an excused
    /// reduction chain.
    #[test]
    fn never_provably_parallel_with_observed_carried_dep(spec in spec_strategy()) {
        let (m, f, l) = build(&spec);
        let res = profile_module(&m, f, &[]).unwrap();
        let report = analyze_loop(&m, f, l);
        if report.verdict == Verdict::ProvablyParallel {
            for d in res.deps.carried_by(f, l) {
                prop_assert!(
                    report.excused.contains(&d.src) && report.excused.contains(&d.dst),
                    "false parallel proof on {spec:?}: observed carried {} {} -> {}",
                    d.kind, d.src, d.dst
                );
            }
        }
    }

    /// Completeness on the unconditional family: these kernels execute
    /// every access on every iteration, so a dependence *proof* must be
    /// witnessed by the trace.
    #[test]
    fn provably_dependent_is_witnessed_on_unguarded_kernels(spec in spec_strategy()) {
        let spec = KernelSpec { guarded: false, ..spec };
        let (m, f, l) = build(&spec);
        let res = profile_module(&m, f, &[]).unwrap();
        let report = analyze_loop(&m, f, l);
        if report.verdict == Verdict::ProvablyDependent {
            prop_assert!(
                !res.deps.carried_by(f, l).is_empty(),
                "dependence proof with a clean trace on {spec:?}"
            );
        }
    }
}
