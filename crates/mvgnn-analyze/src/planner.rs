//! Parallelization planner: from the dependence oracle's facts to a
//! typed, pragma-grade plan.
//!
//! The oracle ([`crate::oracle::analyze_loop`]) collapses its evidence
//! into a three-point [`Verdict`]; this pass keeps the evidence apart
//! and emits the *structured* decision a parallelizing front-end needs:
//!
//! - [`Plan::DoAll`] — iterations provably independent; body scalars
//!   whose value never crosses an iteration and dies at the loop exit
//!   are listed as `private(...)` candidates rather than dependences.
//! - [`Plan::Reduction`] — provably parallel modulo commutative update
//!   chains on a loop-invariant cell (or a scalar accumulator live into
//!   the header); each chain becomes a `reduction(op:var)` clause.
//! - [`Plan::Doacross`] — every carried dependence is proved with a
//!   known distance ≥ 1, so a pipeline with a `depend(sink: i-d)`
//!   ordering is valid; `min_distance` is the tightest such distance.
//! - [`Plan::Serial`] — the blockers that rule the above out, typed.
//!
//! A plan is a *proof* exactly when the backing verdict is decided
//! ([`LoopPlan::proved`]): `DoAll`/`Reduction` ride on
//! `ProvablyParallel`, `Doacross` on `ProvablyDependent`, and a
//! `Serial` plan is only a proof of serial execution when the verdict
//! is `ProvablyDependent` (an `Unknown` verdict plans `Serial`
//! conservatively without claiming anything). Soundness against the
//! interpreting profiler is property-tested in
//! `tests/planner_soundness.rs`.

use crate::affine::{reduction_chains, summarize_loop_strict, AffineExpr, ReductionChain};
use crate::dataflow::liveness;
use crate::oracle::{analyze_loop, Fact, OracleReport, Verdict};
use mvgnn_ir::inst::{BinOp, Inst};
use mvgnn_ir::module::{FuncId, Function, LoopId, Module};
use mvgnn_ir::types::VReg;
use std::fmt;

/// Commutative operator of a `reduction(...)` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionOp {
    /// `+`
    Add,
    /// `*`
    Mul,
    /// `min`
    Min,
    /// `max`
    Max,
}

impl ReductionOp {
    /// OpenMP clause spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ReductionOp::Add => "+",
            ReductionOp::Mul => "*",
            ReductionOp::Min => "min",
            ReductionOp::Max => "max",
        }
    }

    fn of_bin(op: BinOp) -> Option<ReductionOp> {
        match op {
            BinOp::Add => Some(ReductionOp::Add),
            BinOp::Mul => Some(ReductionOp::Mul),
            BinOp::Min => Some(ReductionOp::Min),
            BinOp::Max => Some(ReductionOp::Max),
            _ => None,
        }
    }
}

/// One variable of a `reduction(...)` clause: the array name for memory
/// chains, `%N` for scalar accumulators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionTarget {
    /// Clause-ready variable name.
    pub var: String,
    /// Clause operator.
    pub op: ReductionOp,
}

/// A typed reason why a loop could not be planned parallel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Blocker {
    /// A proved loop-carried dependence (`None` = same cell every
    /// iteration, i.e. every distance at once).
    Carried {
        /// Carried distance when the deciding test produced one.
        distance: Option<i64>,
    },
    /// An access pair that may conflict but was not proved either way.
    MayConflict,
    /// A non-commutative scalar recurrence whose value crosses
    /// iterations.
    ScalarRecurrence {
        /// The recurrence register.
        reg: VReg,
    },
    /// An access whose index is not affine in the induction registers.
    NonAffineAccess,
    /// The body contains a call the analysis does not look through.
    OpaqueCall,
    /// The loop is not a counted `for`.
    NonCountedLoop,
}

impl fmt::Display for Blocker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Blocker::Carried { distance: Some(d) } => write!(f, "carried dep (distance {d})"),
            Blocker::Carried { distance: None } => write!(f, "carried dep (same cell)"),
            Blocker::MayConflict => write!(f, "unproven access pair"),
            Blocker::ScalarRecurrence { reg } => write!(f, "scalar recurrence on %{}", reg.0),
            Blocker::NonAffineAccess => write!(f, "non-affine access"),
            Blocker::OpaqueCall => write!(f, "opaque call"),
            Blocker::NonCountedLoop => write!(f, "non-counted loop"),
        }
    }
}

/// The planner's typed decision for one loop.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Iterations are provably independent.
    DoAll {
        /// `private(...)` scalars (names `%N`).
        private: Vec<String>,
    },
    /// Provably parallel modulo commutative reduction clauses.
    Reduction {
        /// The `reduction(op:var)` clauses, in deterministic order.
        targets: Vec<ReductionTarget>,
        /// `private(...)` scalars (names `%N`).
        private: Vec<String>,
    },
    /// Every carried dependence has a proved distance ≥ 1: a pipeline
    /// (`ordered` / `depend(sink: ...)`) schedule is valid.
    Doacross {
        /// Tightest proved carried distance.
        min_distance: i64,
    },
    /// Not parallelizable as analysed; `blockers` say why.
    Serial {
        /// Typed reasons, deduplicated, in fact order.
        blockers: Vec<Blocker>,
    },
}

/// Pattern a *proved* plan commits to, in the four-class taxonomy the
/// GNN pattern head predicts over (`Task` is never proved statically —
/// task loops contain opaque calls).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedPattern {
    /// Proved DOALL.
    DoAll,
    /// Proved reduction.
    Reduction,
    /// Proved not-parallel (including provable pipelines: a `Doacross`
    /// loop is serial in the binary taxonomy).
    Serial,
}

/// A loop's plan with its provenance: the typed decision, the verdict
/// it rides on, the oracle facts backing every claim, and the rendered
/// OpenMP-style pragma.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopPlan {
    /// The typed decision.
    pub plan: Plan,
    /// The oracle verdict the plan is derived from. `Serial` with an
    /// `Unknown` verdict is a conservative default, not a proof.
    pub verdict: Verdict,
    /// Per-claim provenance (the oracle's fact list).
    pub facts: Vec<Fact>,
    /// OpenMP-style rendering, attached to the IR loop by
    /// [`annotate_loops`].
    pub pragma: String,
}

impl LoopPlan {
    /// Whether this plan is a static proof (decided verdict) rather
    /// than a conservative default.
    pub fn proved(&self) -> bool {
        self.verdict != Verdict::Unknown
    }

    /// The pattern class this plan proves, if any. Used by the
    /// prover-checked evaluation path of the GNN pattern head and by
    /// the lint auditor's rule C.
    pub fn proved_pattern(&self) -> Option<PlannedPattern> {
        match (&self.plan, self.verdict) {
            (Plan::DoAll { .. }, Verdict::ProvablyParallel) => Some(PlannedPattern::DoAll),
            (Plan::Reduction { .. }, Verdict::ProvablyParallel) => {
                Some(PlannedPattern::Reduction)
            }
            (Plan::Doacross { .. }, Verdict::ProvablyDependent) => Some(PlannedPattern::Serial),
            (Plan::Serial { .. }, Verdict::ProvablyDependent) => Some(PlannedPattern::Serial),
            _ => None,
        }
    }

    /// Binary parallel/not-parallel of a proved plan (`None` when
    /// nothing is proved). Matches the corpus label convention
    /// (1 = parallelizable).
    pub fn proved_binary(&self) -> Option<usize> {
        self.proved_pattern().map(|p| match p {
            PlannedPattern::DoAll | PlannedPattern::Reduction => 1,
            PlannedPattern::Serial => 0,
        })
    }
}

/// Reduction clause of one memory chain, when the chain's cell is
/// loop-invariant in `iv` (a cell that moves with the induction is an
/// iteration-local update, not a cross-iteration reduction — planning a
/// clause for it would misdescribe a DOALL).
fn chain_target(
    module: &Module,
    f: &Function,
    c: &ReductionChain,
    iv: VReg,
    accesses: &[crate::affine::Access],
) -> Option<ReductionTarget> {
    let Inst::Store { arr, .. } = &f.blocks[c.store.block.index()].insts[c.store.idx as usize]
    else {
        return None;
    };
    let cell = accesses
        .iter()
        .find(|a| a.block == c.store.block && a.idx_in_block == c.store.idx as usize);
    let crosses_iterations = match cell.map(|a| &a.index) {
        Some(AffineExpr::Affine { coeffs, .. }) => coeffs.get(&iv.0).copied().unwrap_or(0) == 0,
        // Non-affine cell (e.g. `a[idx[i]]`): the chain may hit the same
        // cell across iterations, so the clause is the safe description.
        _ => true,
    };
    if !crosses_iterations {
        return None;
    }
    let op = match &f.blocks[c.bin.block.index()].insts[c.bin.idx as usize] {
        Inst::Bin { op, .. } => ReductionOp::of_bin(*op)?,
        _ => return None,
    };
    Some(ReductionTarget { var: module.arrays[arr.index()].name.clone(), op })
}

/// Operator of a scalar accumulator's self-update inside loop `l`.
fn scalar_op(f: &Function, func: FuncId, l: LoopId, reg: VReg) -> Option<ReductionOp> {
    let blocks: std::collections::HashSet<_> = f.loop_blocks(l).into_iter().collect();
    f.insts_with_refs(func).find_map(|(r, inst, _)| {
        if !blocks.contains(&r.block) {
            return None;
        }
        match inst {
            Inst::Bin { op, dst, lhs, rhs }
                if *dst == reg && (*lhs == reg || *rhs == reg) =>
            {
                ReductionOp::of_bin(*op)
            }
            _ => None,
        }
    })
}

fn render_private(out: &mut String, private: &[String]) {
    if !private.is_empty() {
        out.push_str(&format!(" private({})", private.join(", ")));
    }
}

fn render_pragma(plan: &Plan, verdict: Verdict) -> String {
    match plan {
        Plan::DoAll { private } => {
            let mut s = String::from("#pragma omp parallel for");
            render_private(&mut s, private);
            s
        }
        Plan::Reduction { targets, private } => {
            let mut s = String::from("#pragma omp parallel for");
            for t in targets {
                s.push_str(&format!(" reduction({}:{})", t.op.as_str(), t.var));
            }
            render_private(&mut s, private);
            s
        }
        Plan::Doacross { min_distance } => {
            format!("#pragma omp parallel for ordered(1) depend(sink: i-{min_distance})")
        }
        Plan::Serial { blockers } => {
            let reasons = if blockers.is_empty() {
                String::from("no evidence")
            } else {
                blockers.iter().map(|b| b.to_string()).collect::<Vec<_>>().join("; ")
            };
            if verdict == Verdict::ProvablyDependent {
                format!("// serial: {reasons}")
            } else {
                format!("// undecided: {reasons}")
            }
        }
    }
}

/// Derive the plan for loop `l` from an already-computed oracle report.
pub fn plan_from_report(
    module: &Module,
    func: FuncId,
    l: LoopId,
    report: &OracleReport,
) -> LoopPlan {
    let f = &module.funcs[func.index()];
    let info = &f.loops[l.index()];
    let live = liveness(f);

    // Privatization over the liveness results: a scalar the oracle found
    // privatizable (its value is killed before use each iteration) is a
    // `private(...)` candidate exactly when it is also dead at the loop
    // exit — otherwise its last value escapes and privatizing it would
    // change the program.
    let mut private: Vec<String> = report
        .facts
        .iter()
        .filter_map(|fact| match fact {
            Fact::PrivatizableScalar { reg }
                if !live.live_in_at(info.header, *reg) && !live.live_in_at(info.exit, *reg) =>
            {
                Some(format!("%{}", reg.0))
            }
            _ => None,
        })
        .collect();
    private.sort();
    private.dedup();

    let plan = match report.verdict {
        Verdict::ProvablyParallel => {
            let mut targets: Vec<ReductionTarget> = Vec::new();
            if let Some(iv) = info.induction {
                let summary = summarize_loop_strict(module, func, l);
                for c in &reduction_chains(module, func, l) {
                    if let Some(t) = chain_target(module, f, c, iv, &summary.accesses) {
                        if !targets.contains(&t) {
                            targets.push(t);
                        }
                    }
                }
            }
            for fact in &report.facts {
                if let Fact::CommutativeRecurrence { reg } = fact {
                    if let Some(op) = scalar_op(f, func, l, *reg) {
                        let t = ReductionTarget { var: format!("%{}", reg.0), op };
                        if !targets.contains(&t) {
                            targets.push(t);
                        }
                    }
                }
            }
            targets.sort_by(|a, b| a.var.cmp(&b.var));
            if targets.is_empty() {
                Plan::DoAll { private }
            } else {
                Plan::Reduction { targets, private }
            }
        }
        Verdict::ProvablyDependent | Verdict::Unknown => {
            // A provable pipeline needs *every* pair accounted for: each
            // proved dependence carries a known distance ≥ 1 and nothing
            // is left undecided or carried by a scalar chain.
            let mut min_distance: Option<i64> = None;
            let mut pipeline_ok = report.verdict == Verdict::ProvablyDependent;
            let mut blockers: Vec<Blocker> = Vec::new();
            for fact in &report.facts {
                let blocker = match fact {
                    Fact::PairDependent { distance, .. } => {
                        match distance {
                            Some(d) if *d >= 1 => {
                                min_distance =
                                    Some(min_distance.map_or(*d, |m: i64| m.min(*d)));
                            }
                            _ => pipeline_ok = false,
                        }
                        Some(Blocker::Carried { distance: *distance })
                    }
                    Fact::PairMayConflict { .. } => {
                        pipeline_ok = false;
                        Some(Blocker::MayConflict)
                    }
                    Fact::NonCommutativeRecurrence { reg } => {
                        pipeline_ok = false;
                        Some(Blocker::ScalarRecurrence { reg: *reg })
                    }
                    Fact::NonAffineAccess { .. } => {
                        pipeline_ok = false;
                        Some(Blocker::NonAffineAccess)
                    }
                    Fact::OpaqueCall => {
                        pipeline_ok = false;
                        Some(Blocker::OpaqueCall)
                    }
                    Fact::NonCountedLoop => {
                        pipeline_ok = false;
                        Some(Blocker::NonCountedLoop)
                    }
                    _ => None,
                };
                if let Some(b) = blocker {
                    if !blockers.contains(&b) {
                        blockers.push(b);
                    }
                }
            }
            match min_distance {
                Some(d) if pipeline_ok => Plan::Doacross { min_distance: d },
                _ => Plan::Serial { blockers },
            }
        }
    };

    let pragma = render_pragma(&plan, report.verdict);
    LoopPlan { plan, verdict: report.verdict, facts: report.facts.clone(), pragma }
}

/// Run the oracle and plan loop `l` of `func` in one step.
pub fn plan_loop(module: &Module, func: FuncId, l: LoopId) -> LoopPlan {
    let report = analyze_loop(module, func, l);
    plan_from_report(module, func, l, &report)
}

/// Plan every loop of every function and attach the rendered pragma to
/// the IR loop metadata ([`mvgnn_ir::module::LoopInfo::annotation`]).
pub fn annotate_loops(module: &mut Module) {
    let mut pragmas: Vec<(usize, usize, String)> = Vec::new();
    for (fi, f) in module.funcs.iter().enumerate() {
        for (li, _) in f.loops.iter().enumerate() {
            let plan = plan_loop(module, FuncId(fi as u32), LoopId(li as u32));
            pragmas.push((fi, li, plan.pragma));
        }
    }
    for (fi, li, pragma) in pragmas {
        module.funcs[fi].loops[li].annotation = Some(pragma);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::FunctionBuilder;

    #[test]
    fn map_loop_plans_doall() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let out = m.add_array("b", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let y = b.bin(BinOp::Mul, x, x);
            b.store(out, iv, y);
        });
        let f = b.finish();
        let p = plan_loop(&m, f, l);
        assert!(matches!(p.plan, Plan::DoAll { .. }), "{:?}", p.plan);
        assert!(p.proved());
        assert_eq!(p.proved_pattern(), Some(PlannedPattern::DoAll));
        assert_eq!(p.pragma, "#pragma omp parallel for");
    }

    #[test]
    fn privatizable_scalar_joins_the_private_clause() {
        // t = t * x each iteration with t reinitialised first: dead at
        // the header and at the exit, so it privatizes.
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let out = m.add_array("b", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let t = b.bin(BinOp::Add, x, x);
            b.bin_to(t, BinOp::Sub, t, x);
            b.store(out, iv, t);
        });
        let f = b.finish();
        let p = plan_loop(&m, f, l);
        match &p.plan {
            Plan::DoAll { private } => assert_eq!(private.len(), 1, "{private:?}"),
            other => panic!("expected DoAll, got {other:?}"),
        }
        assert!(p.pragma.contains("private("), "{}", p.pragma);
    }

    #[test]
    fn memory_reduction_plans_reduction_clause() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let s = m.add_array("s", Ty::F64, 1);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        let zero = b.const_i64(0);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let cur = b.load(s, zero);
            let nxt = b.bin(BinOp::Add, cur, x);
            b.store(s, zero, nxt);
        });
        let f = b.finish();
        let p = plan_loop(&m, f, l);
        match &p.plan {
            Plan::Reduction { targets, .. } => {
                assert_eq!(targets, &[ReductionTarget { var: "s".into(), op: ReductionOp::Add }]);
            }
            other => panic!("expected Reduction, got {other:?}"),
        }
        assert_eq!(p.proved_pattern(), Some(PlannedPattern::Reduction));
        assert_eq!(p.pragma, "#pragma omp parallel for reduction(+:s)");
    }

    #[test]
    fn scalar_accumulator_plans_reduction_clause() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        let acc = b.const_f64(0.0);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            b.bin_to(acc, BinOp::Add, acc, x);
        });
        b.ret(Some(acc));
        let f = b.finish();
        let p = plan_loop(&m, f, l);
        match &p.plan {
            Plan::Reduction { targets, .. } => {
                assert_eq!(targets.len(), 1);
                assert_eq!(targets[0].op, ReductionOp::Add);
                assert!(targets[0].var.starts_with('%'), "{}", targets[0].var);
            }
            other => panic!("expected Reduction, got {other:?}"),
        }
    }

    #[test]
    fn chain_on_a_moving_cell_is_not_a_reduction_clause() {
        // out[i] = out[i] + a[i]: a commutative chain, but the cell moves
        // with the induction — an iteration-local update, planned DoAll.
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let out = m.add_array("out", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let cur = b.load(out, iv);
            let nxt = b.bin(BinOp::Add, cur, x);
            b.store(out, iv, nxt);
        });
        let f = b.finish();
        let p = plan_loop(&m, f, l);
        assert!(matches!(p.plan, Plan::DoAll { .. }), "{:?}", p.plan);
    }

    #[test]
    fn distance_recurrence_plans_doacross() {
        // a[i] = a[i-3] + 1: one carried dep, distance 3.
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::I64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(3), b.const_i64(16), b.const_i64(1));
        let three = b.const_i64(3);
        let one = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let p = b.bin(BinOp::Sub, iv, three);
            let x = b.load(a, p);
            let y = b.bin(BinOp::Add, x, one);
            b.store(a, iv, y);
        });
        let f = b.finish();
        let p = plan_loop(&m, f, l);
        assert_eq!(p.plan, Plan::Doacross { min_distance: 3 }, "{:?}", p.facts);
        assert!(p.proved());
        assert_eq!(p.proved_pattern(), Some(PlannedPattern::Serial));
        assert!(p.pragma.contains("depend(sink: i-3)"), "{}", p.pragma);
    }

    #[test]
    fn same_cell_recurrence_is_serial_not_doacross() {
        // a[0] = a[0] - x: ZIV same-cell, distance unknown -> Serial.
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 4);
        let src = m.add_array("s", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        let zero = b.const_i64(0);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(src, iv);
            let cur = b.load(a, zero);
            let nxt = b.bin(BinOp::Sub, cur, x);
            b.store(a, zero, nxt);
        });
        let f = b.finish();
        let p = plan_loop(&m, f, l);
        match &p.plan {
            Plan::Serial { blockers } => {
                assert!(
                    blockers.iter().any(|b| matches!(b, Blocker::Carried { distance: None })),
                    "{blockers:?}"
                );
            }
            other => panic!("expected Serial, got {other:?}"),
        }
        assert!(p.proved());
        assert!(p.pragma.starts_with("// serial:"), "{}", p.pragma);
    }

    #[test]
    fn non_counted_loop_plans_unproved_serial() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let one = b.const_i64(1);
        let l = b.while_loop(|b| b.copy(one), |_b| {});
        let f = b.finish();
        let p = plan_loop(&m, f, l);
        match &p.plan {
            Plan::Serial { blockers } => {
                assert_eq!(blockers, &[Blocker::NonCountedLoop]);
            }
            other => panic!("expected Serial, got {other:?}"),
        }
        assert!(!p.proved(), "an Unknown verdict must not claim a proof");
        assert_eq!(p.proved_pattern(), None);
        assert!(p.pragma.starts_with("// undecided:"), "{}", p.pragma);
    }

    #[test]
    fn annotate_loops_attaches_pragmas_everywhere() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let out = m.add_array("b", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            b.store(out, iv, x);
        });
        b.finish();
        annotate_loops(&mut m);
        for f in &m.funcs {
            for info in &f.loops {
                assert!(info.annotation.is_some());
            }
        }
        assert_eq!(
            m.funcs[0].loops[0].annotation.as_deref(),
            Some("#pragma omp parallel for")
        );
    }
}
