//! # mvgnn-analyze — static dataflow and dependence analysis over `mvgnn-ir`
//!
//! Three layers (see DESIGN.md §11):
//!
//! - [`dataflow`]: a generic worklist engine over [`mvgnn_ir::Cfg`] with the
//!   two classic instances the rest of the crate needs — reaching
//!   definitions and live registers.
//! - [`affine`]: affine (symbolic) index expressions over induction
//!   registers, per-loop access summaries, the GCD/Banerjee-class conflict
//!   test, and memory reduction-chain recognition. This is the machinery
//!   the `mvgnn-baselines` static tools (`pluto_like`, `autopar_like`)
//!   consume; it used to live inside that crate.
//! - [`oracle`]: the static loop-carried dependence oracle. For one loop
//!   it returns a [`Verdict`] — `ProvablyParallel`, `ProvablyDependent`
//!   or `Unknown` — together with provenance [`Fact`]s naming the
//!   accesses and the test that decided each one, and an `excused` set of
//!   reduction-chain instructions whose observed carried dependences are
//!   benign. The `lint` binary of `mvgnn-bench` audits the generated
//!   corpus by cross-checking these verdicts against the profiler's
//!   `DepGraph` and the dataset labels.
//! - [`planner`]: the parallelization planner layered on the oracle. It
//!   keeps the oracle's evidence apart instead of collapsing it,
//!   emitting a typed [`Plan`] — `DoAll` (with `private(...)`
//!   candidates from the liveness-based privatization rule),
//!   `Reduction` (clause targets from chains on loop-invariant cells
//!   and header-live scalar accumulators), `Doacross` (every carried
//!   dependence proved at distance ≥ 1), or `Serial` (typed
//!   [`Blocker`]s) — rendered as an OpenMP-style pragma string.
//!
//! The oracle is deliberately asymmetric: `ProvablyParallel` and
//! `ProvablyDependent` are *claims* that the corpus auditor treats as
//! hard soundness obligations, so both sides only fire on conservative,
//! closed-form evidence; everything else is `Unknown`.

pub mod affine;
pub mod dataflow;
pub mod oracle;
pub mod planner;

pub use affine::{
    conflicts, reduction_chains, reduction_store_sites, summarize_loop, summarize_loop_strict,
    Access, AffineExpr,
    LoopSummary, ReductionChain,
};
pub use dataflow::{liveness, reaching_definitions, BitSet, Liveness, ReachingDefs};
pub use oracle::{analyze_loop, loop_bounds, DepTest, Fact, LoopBounds, OracleReport, Verdict};
pub use planner::{
    annotate_loops, plan_from_report, plan_loop, Blocker, LoopPlan, Plan, PlannedPattern,
    ReductionOp, ReductionTarget,
};
