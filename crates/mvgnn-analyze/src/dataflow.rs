//! Worklist dataflow engine: a dense bitset domain plus the two classic
//! analyses the oracle consumes — reaching definitions and liveness.
//!
//! Both run over [`mvgnn_ir::Cfg`] to a fixpoint with a block worklist
//! seeded in (reverse) postorder, the textbook iterative scheme. The IR
//! has no phis — registers are mutable virtual registers — so "definition"
//! means any instruction whose `Inst::def` is the register.

use mvgnn_ir::inst::InstRef;
use mvgnn_ir::module::{BlockId, FuncId, Function};
use mvgnn_ir::types::VReg;
use mvgnn_ir::Cfg;

/// A fixed-width bitset over `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// Universe size.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set bit `i`; returns true if it was newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let newly = self.words[w] & b == 0;
        self.words[w] |= b;
        newly
    }

    /// Clear bit `i`.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Is bit `i` set?
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self -= other`.
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Iterate set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.contains(i))
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Reaching definitions: which def sites can reach each block entry/exit.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// All definition sites of the function, in block order; the bitsets
    /// index into this.
    pub defs: Vec<(InstRef, VReg)>,
    /// Def sites reaching each block's entry.
    pub reach_in: Vec<BitSet>,
    /// Def sites reaching each block's exit.
    pub reach_out: Vec<BitSet>,
}

impl ReachingDefs {
    /// Definition sites of `reg` that reach the entry of `b`.
    pub fn reaching(&self, b: BlockId, reg: VReg) -> Vec<InstRef> {
        self.reach_in[b.index()]
            .iter()
            .filter(|&i| self.defs[i].1 == reg)
            .map(|i| self.defs[i].0)
            .collect()
    }
}

/// Compute reaching definitions for `f` (forward, may, union-confluence).
pub fn reaching_definitions(f: &Function, func: FuncId) -> ReachingDefs {
    let cfg = Cfg::new(f);
    let n = cfg.len();
    let defs: Vec<(InstRef, VReg)> = f
        .insts_with_refs(func)
        .filter_map(|(r, inst, _)| inst.def().map(|d| (r, d)))
        .collect();
    let nd = defs.len();

    // gen[b]: last def of each register in b; kill[b]: every def of a
    // register that b (re)defines.
    let mut gen = vec![BitSet::new(nd); n];
    let mut kill = vec![BitSet::new(nd); n];
    for (di, (r, reg)) in defs.iter().enumerate() {
        let b = r.block.index();
        // A later def of the same register in the same block supersedes it.
        let superseded = defs.iter().any(|(r2, reg2)| {
            r2.block == r.block && reg2 == reg && r2.idx > r.idx
        });
        if !superseded {
            gen[b].insert(di);
        }
        for (dj, (_, reg2)) in defs.iter().enumerate() {
            if reg2 == reg && dj != di {
                kill[b].insert(dj);
            }
        }
    }

    let mut reach_in = vec![BitSet::new(nd); n];
    let mut reach_out = vec![BitSet::new(nd); n];
    let order = cfg.reverse_postorder();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let bi = b.index();
            let mut inp = BitSet::new(nd);
            for p in &cfg.preds[bi] {
                inp.union_with(&reach_out[p.index()]);
            }
            let mut out = inp.clone();
            out.subtract(&kill[bi]);
            out.union_with(&gen[bi]);
            if out != reach_out[bi] || inp != reach_in[bi] {
                changed = true;
            }
            reach_in[bi] = inp;
            reach_out[bi] = out;
        }
    }
    ReachingDefs { defs, reach_in, reach_out }
}

/// Live registers at block boundaries.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live at each block's entry (bit = register number).
    pub live_in: Vec<BitSet>,
    /// Registers live at each block's exit.
    pub live_out: Vec<BitSet>,
}

impl Liveness {
    /// Is `reg` live at the entry of `b`?
    pub fn live_in_at(&self, b: BlockId, reg: VReg) -> bool {
        self.live_in[b.index()].contains(reg.0 as usize)
    }

    /// Is `reg` live at the exit of `b`?
    pub fn live_out_at(&self, b: BlockId, reg: VReg) -> bool {
        self.live_out[b.index()].contains(reg.0 as usize)
    }
}

/// Compute register liveness for `f` (backward, may, union-confluence).
pub fn liveness(f: &Function) -> Liveness {
    let cfg = Cfg::new(f);
    let n = cfg.len();
    let nr = f.num_regs as usize;

    // use[b]: read before any def in b; def[b]: defined in b.
    let mut use_ = vec![BitSet::new(nr); n];
    let mut def = vec![BitSet::new(nr); n];
    for (bi, blk) in f.blocks.iter().enumerate() {
        for inst in &blk.insts {
            for u in inst.uses() {
                if !def[bi].contains(u.0 as usize) {
                    use_[bi].insert(u.0 as usize);
                }
            }
            if let Some(d) = inst.def() {
                def[bi].insert(d.0 as usize);
            }
        }
    }

    let mut live_in = vec![BitSet::new(nr); n];
    let mut live_out = vec![BitSet::new(nr); n];
    // Postorder = reverse of RPO, the fast direction for backward flow.
    let order: Vec<BlockId> = cfg.reverse_postorder().into_iter().rev().collect();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let bi = b.index();
            let mut out = BitSet::new(nr);
            for s in &cfg.succs[bi] {
                out.union_with(&live_in[s.index()]);
            }
            let mut inp = out.clone();
            inp.subtract(&def[bi]);
            inp.union_with(&use_[bi]);
            if out != live_out[bi] || inp != live_in[bi] {
                changed = true;
            }
            live_in[bi] = inp;
            live_out[bi] = out;
        }
    }
    Liveness { live_in, live_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_ir::inst::BinOp;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::{FunctionBuilder, Module};

    fn accumulator_loop() -> (Module, FuncId, VReg, BlockId, BlockId) {
        // acc = 0; for i in 0..8 { acc = acc + a[i] }; ret acc
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 8);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(8), b.const_i64(1));
        let acc = b.const_f64(0.0);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            b.bin_to(acc, BinOp::Add, acc, x);
        });
        b.ret(Some(acc));
        let f = b.finish();
        let info = m.funcs[f.index()].loops[l.index()].clone();
        (m, f, acc, info.header, info.latch)
    }

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert is a no-op");
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.count(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
        let mut t = BitSet::new(130);
        t.insert(64);
        assert!(s.union_with(&t));
        assert!(!s.union_with(&t), "idempotent");
        s.subtract(&t);
        assert!(!s.contains(64));
        s.remove(0);
        assert!(!s.contains(0));
        assert_eq!(s.len(), 130);
    }

    #[test]
    fn accumulator_is_live_around_the_loop() {
        let (m, f, acc, header, _latch) = accumulator_loop();
        let live = liveness(&m.funcs[f.index()]);
        // The accumulator's value crosses iterations: live into the header.
        assert!(live.live_in_at(header, acc));
    }

    #[test]
    fn body_temp_is_not_live_into_header() {
        // t = a[i]; b[i] = t * t — t dies within the iteration.
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 8);
        let out = m.add_array("b", Ty::F64, 8);
        let mut bld = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (bld.const_i64(0), bld.const_i64(8), bld.const_i64(1));
        let mut t_reg = None;
        let l = bld.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            t_reg = Some(x);
            let y = b.bin(BinOp::Mul, x, x);
            b.store(out, iv, y);
        });
        let f = bld.finish();
        let header = m.funcs[f.index()].loops[l.index()].header;
        let live = liveness(&m.funcs[f.index()]);
        assert!(!live.live_in_at(header, t_reg.unwrap()));
    }

    #[test]
    fn reaching_defs_of_the_accumulator() {
        let (m, f, acc, header, _latch) = accumulator_loop();
        let rd = reaching_definitions(&m.funcs[f.index()], f);
        // Both the init const and the in-loop update reach the header.
        let sites = rd.reaching(header, acc);
        assert_eq!(sites.len(), 2, "init + update reach the header: {sites:?}");
        // Exactly one def of acc reaches the entry block's exit.
        let entry_out: Vec<_> = rd.reach_out[0]
            .iter()
            .filter(|&i| rd.defs[i].1 == acc)
            .collect();
        assert_eq!(entry_out.len(), 1);
    }
}
