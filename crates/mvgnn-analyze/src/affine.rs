//! Affine index expressions, per-loop access summaries and the
//! GCD/Banerjee-class conflict test.
//!
//! Hoisted out of `mvgnn-baselines::tools`, where it powered `pluto_like`
//! and `autopar_like`; the verdicts of those tools are pinned bit-for-bit
//! by `crates/mvgnn-baselines/tests/table3_pins.rs`, so any change here
//! must be behaviour-preserving for them.

use mvgnn_ir::inst::{BinOp, Inst, InstRef};
use mvgnn_ir::module::{BlockId, FuncId, LoopId, Module};
use mvgnn_ir::types::{ArrayId, VReg};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Affine expression over induction registers, or unanalysable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AffineExpr {
    /// `constant + Σ coeffs[r]·r` over induction registers `r`.
    Affine {
        /// Constant term.
        constant: i64,
        /// Coefficient per induction register (keyed by register number;
        /// zero coefficients are never stored).
        coeffs: BTreeMap<u32, i64>,
    },
    /// Not an affine function of the induction registers.
    Unknown,
}

impl AffineExpr {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> AffineExpr {
        AffineExpr::Affine { constant: c, coeffs: BTreeMap::new() }
    }

    /// The expression `1·reg`.
    pub fn var(reg: VReg) -> AffineExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(reg.0, 1);
        AffineExpr::Affine { constant: 0, coeffs }
    }

    /// `self + other` (or `self - other` when `negate`).
    pub fn add(&self, other: &AffineExpr, negate: bool) -> AffineExpr {
        match (self, other) {
            (
                AffineExpr::Affine { constant: c1, coeffs: k1 },
                AffineExpr::Affine { constant: c2, coeffs: k2 },
            ) => {
                let sign = if negate { -1 } else { 1 };
                let mut coeffs = k1.clone();
                for (&r, &c) in k2 {
                    *coeffs.entry(r).or_insert(0) += sign * c;
                }
                coeffs.retain(|_, &mut c| c != 0);
                AffineExpr::Affine { constant: c1 + sign * c2, coeffs }
            }
            _ => AffineExpr::Unknown,
        }
    }

    /// `self * other`; affine only when one side is constant.
    pub fn mul(&self, other: &AffineExpr) -> AffineExpr {
        match (self, other) {
            (AffineExpr::Affine { constant, coeffs }, rhs) if coeffs.is_empty() => {
                rhs.scale(*constant)
            }
            (lhs, AffineExpr::Affine { constant, coeffs }) if coeffs.is_empty() => {
                lhs.scale(*constant)
            }
            _ => AffineExpr::Unknown,
        }
    }

    /// `self * s`.
    pub fn scale(&self, s: i64) -> AffineExpr {
        match self {
            AffineExpr::Affine { constant, coeffs } => {
                let mut k: BTreeMap<u32, i64> =
                    coeffs.iter().map(|(&r, &c)| (r, c * s)).collect();
                k.retain(|_, &mut c| c != 0);
                AffineExpr::Affine { constant: constant * s, coeffs: k }
            }
            AffineExpr::Unknown => AffineExpr::Unknown,
        }
    }
}

/// One static memory access in a loop body.
#[derive(Debug, Clone)]
pub struct Access {
    /// Accessed array.
    pub arr: ArrayId,
    /// Index expression in terms of induction registers.
    pub index: AffineExpr,
    /// `true` for stores.
    pub is_write: bool,
    /// Block holding the instruction.
    pub block: BlockId,
    /// Index of the instruction within its block.
    pub idx_in_block: usize,
}

impl Access {
    /// Global reference to the access instruction.
    pub fn inst_ref(&self, func: FuncId) -> InstRef {
        InstRef { func, block: self.block, idx: self.idx_in_block as u32 }
    }
}

/// Static summary of a loop body.
#[derive(Debug, Clone)]
pub struct LoopSummary {
    /// Memory accesses inside the loop, in block order.
    pub accesses: Vec<Access>,
    /// At least one call instruction inside the loop.
    pub has_call: bool,
    /// Self-updating registers (`r = r ⊕ x`, `r` not an induction) with a
    /// commutative update op.
    pub commutative_recs: HashSet<VReg>,
    /// Self-updating registers with a non-commutative update op.
    pub noncommutative_recs: HashSet<VReg>,
}

/// Summarise loop `l` of `func`: symbolically evaluate index expressions
/// over induction registers and collect the loop's memory accesses, calls
/// and scalar recurrences.
///
/// Walks the whole function in block order so values defined before the
/// loop (bounds, constants, strides) are known; accesses are recorded only
/// inside the loop's blocks.
pub fn summarize_loop(module: &Module, func: FuncId, l: LoopId) -> LoopSummary {
    summarize_loop_impl(module, func, l, false)
}

/// [`summarize_loop`] with every multiply-defined non-induction register
/// treated as [`AffineExpr::Unknown`] at *all* of its definition sites.
///
/// The plain walk is flow-insensitive (last definition wins), which
/// reproduces how the modelled static tools behave — e.g. a conditionally
/// reassigned index register looks like its final assignment. That is
/// fine for a tool model but unsound for a *proof*: the dependence
/// oracle uses this variant, where a register with two reaching
/// definitions can never pretend to be affine.
pub fn summarize_loop_strict(module: &Module, func: FuncId, l: LoopId) -> LoopSummary {
    summarize_loop_impl(module, func, l, true)
}

fn summarize_loop_impl(module: &Module, func: FuncId, l: LoopId, strict: bool) -> LoopSummary {
    let f = &module.funcs[func.index()];
    let blocks: Vec<BlockId> = f.loop_blocks(l);
    let block_set: HashSet<BlockId> = blocks.iter().copied().collect();
    let inductions: HashSet<VReg> = f.loops.iter().filter_map(|i| i.induction).collect();

    // Multi-def registers (outside induction updates) become Unknown.
    let mut def_count: HashMap<VReg, u32> = HashMap::new();
    for (r, inst, _) in f.insts_with_refs(func) {
        let _ = r;
        if let Some(d) = inst.def() {
            *def_count.entry(d).or_insert(0) += 1;
        }
    }

    let mut sym: HashMap<VReg, AffineExpr> = HashMap::new();
    for iv in &inductions {
        sym.insert(*iv, AffineExpr::var(*iv));
    }
    let lookup = |sym: &HashMap<VReg, AffineExpr>, r: VReg| {
        sym.get(&r).cloned().unwrap_or(AffineExpr::Unknown)
    };
    // Under `strict`, a non-induction register with several definitions is
    // opaque everywhere; derived values go Unknown transitively through
    // the normal lookup path.
    let opaque = |r: VReg| {
        strict && def_count.get(&r).copied().unwrap_or(0) > 1 && !inductions.contains(&r)
    };

    let mut summary = LoopSummary {
        accesses: Vec::new(),
        has_call: false,
        commutative_recs: HashSet::new(),
        noncommutative_recs: HashSet::new(),
    };

    for (bi, blk) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        let inside = block_set.contains(&bid);
        for (ii, inst) in blk.insts.iter().enumerate() {
            match inst {
                Inst::Const { dst, value }
                    if !inductions.contains(dst) => {
                        let s = if opaque(*dst) {
                            AffineExpr::Unknown
                        } else {
                            value
                                .as_i64()
                                .map(AffineExpr::constant)
                                .unwrap_or(AffineExpr::Unknown)
                        };
                        sym.insert(*dst, s);
                    }
                Inst::Copy { dst, src }
                    if !inductions.contains(dst) => {
                        let s = if opaque(*dst) {
                            AffineExpr::Unknown
                        } else {
                            lookup(&sym, *src)
                        };
                        sym.insert(*dst, s);
                    }
                Inst::Bin { op, dst, lhs, rhs } => {
                    if inside && (*dst == *lhs || *dst == *rhs) && !inductions.contains(dst) {
                        if matches!(op, BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max) {
                            summary.commutative_recs.insert(*dst);
                        } else {
                            summary.noncommutative_recs.insert(*dst);
                        }
                    }
                    if !inductions.contains(dst) {
                        let a = lookup(&sym, *lhs);
                        let b = lookup(&sym, *rhs);
                        let s = if def_count.get(dst).copied().unwrap_or(0) > 1 {
                            AffineExpr::Unknown
                        } else {
                            match op {
                                BinOp::Add => a.add(&b, false),
                                BinOp::Sub => a.add(&b, true),
                                BinOp::Mul => a.mul(&b),
                                _ => AffineExpr::Unknown,
                            }
                        };
                        sym.insert(*dst, s);
                    }
                }
                Inst::Un { dst, .. }
                    if !inductions.contains(dst) => {
                        sym.insert(*dst, AffineExpr::Unknown);
                    }
                Inst::Load { dst, arr, idx } => {
                    if inside {
                        summary.accesses.push(Access {
                            arr: *arr,
                            index: lookup(&sym, *idx),
                            is_write: false,
                            block: bid,
                            idx_in_block: ii,
                        });
                    }
                    if !inductions.contains(dst) {
                        sym.insert(*dst, AffineExpr::Unknown);
                    }
                }
                Inst::Store { arr, idx, .. }
                    if inside => {
                        summary.accesses.push(Access {
                            arr: *arr,
                            index: lookup(&sym, *idx),
                            is_write: true,
                            block: bid,
                            idx_in_block: ii,
                        });
                    }
                Inst::Call { dst, .. } => {
                    if inside {
                        summary.has_call = true;
                    }
                    if let Some(d) = dst {
                        sym.insert(*d, AffineExpr::Unknown);
                    }
                }
                _ => {}
            }
        }
    }
    summary
}

pub(crate) fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Does a pair of accesses conflict across iterations of the loop whose
/// induction register is `iv`? Conservative: `true` unless provably safe.
///
/// ZIV on coefficient-free pairs, strong-SIV on equal coefficients, GCD
/// test on distinct ones; coefficients on any other register must match
/// exactly or the pair is conservatively conflicting.
pub fn conflicts(iv: VReg, a: &Access, b: &Access) -> bool {
    let (
        AffineExpr::Affine { constant: c1, coeffs: k1 },
        AffineExpr::Affine { constant: c2, coeffs: k2 },
    ) = (&a.index, &b.index)
    else {
        return true; // unanalysable index
    };
    let a_iv = k1.get(&iv.0).copied().unwrap_or(0);
    let b_iv = k2.get(&iv.0).copied().unwrap_or(0);
    // Remaining symbols (outer/inner loop ivs) must match coefficient-wise;
    // otherwise be conservative.
    let strip = |k: &BTreeMap<u32, i64>| -> BTreeMap<u32, i64> {
        k.iter().filter(|&(&r, _)| r != iv.0).map(|(&r, &c)| (r, c)).collect()
    };
    if strip(k1) != strip(k2) {
        return true;
    }
    let dc = c2 - c1;
    match (a_iv, b_iv) {
        (0, 0) => dc == 0, // same fixed cell touched every iteration
        (x, y) if x == y => {
            // a(i1 - i2) = dc: carried iff a nonzero distance exists.
            dc != 0 && dc % x == 0
        }
        (x, y) => {
            // x·i1 − y·i2 = dc solvable (GCD test) — conservative on
            // distinct coefficients.
            let g = gcd(x, y);
            g != 0 && dc % g == 0
        }
    }
}

/// One recognised memory reduction chain `a[x] = a[x] ⊕ v` inside a loop:
/// the store, the commutative `Bin` feeding it, and every load of the
/// same cell that feeds the `Bin`.
#[derive(Debug, Clone)]
pub struct ReductionChain {
    /// The chain's store instruction.
    pub store: InstRef,
    /// The commutative update producing the stored value.
    pub bin: InstRef,
    /// Loads of the same cell feeding the update (same block).
    pub loads: Vec<InstRef>,
}

impl ReductionChain {
    /// All instruction references participating in the chain.
    pub fn refs(&self) -> impl Iterator<Item = InstRef> + '_ {
        [self.store, self.bin].into_iter().chain(self.loads.iter().copied())
    }
}

/// Memory reduction chains of loop `l`: stores whose value flows through
/// a commutative op from a load of the same array and index register (or
/// a constant-equal index register) in the same block.
pub fn reduction_chains(module: &Module, func: FuncId, l: LoopId) -> Vec<ReductionChain> {
    let f = &module.funcs[func.index()];
    let blocks: HashSet<BlockId> = f.loop_blocks(l).into_iter().collect();
    // Single-def constant registers (front-ends emit one per literal).
    let mut def_count: HashMap<VReg, u32> = HashMap::new();
    let mut const_val: HashMap<VReg, mvgnn_ir::types::Value> = HashMap::new();
    for blk in &f.blocks {
        for inst in &blk.insts {
            if let Some(d) = inst.def() {
                *def_count.entry(d).or_insert(0) += 1;
            }
            if let Inst::Const { dst, value } = inst {
                const_val.insert(*dst, *value);
            }
        }
    }
    const_val.retain(|r, _| def_count.get(r) == Some(&1));
    let mut out = Vec::new();
    for (bi, blk) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        if !blocks.contains(&bid) {
            continue;
        }
        for (si, inst) in blk.insts.iter().enumerate() {
            let Inst::Store { arr, idx, src } = inst else { continue };
            // Find the defining instruction of the stored value: it must be
            // a commutative Bin for the store to head a chain.
            let mut bin_at: Option<(usize, VReg, VReg)> = None;
            for (pi, prev) in blk.insts[..si].iter().enumerate().rev() {
                if prev.def() == Some(*src) {
                    if let Inst::Bin { op, lhs, rhs, .. } = prev {
                        if matches!(op, BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max) {
                            bin_at = Some((pi, *lhs, *rhs));
                        }
                    }
                    break;
                }
            }
            let Some((bin_idx, lhs, rhs)) = bin_at else { continue };
            let loads: Vec<InstRef> = blk.insts[..si]
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    matches!(p, Inst::Load { dst, arr: la, idx: li }
                        if (dst == &lhs || dst == &rhs) && la == arr
                            && (li == idx
                                || matches!(
                                    (const_val.get(li), const_val.get(idx)),
                                    (Some(x), Some(y)) if x == y)))
                })
                .map(|(pi, _)| InstRef { func, block: bid, idx: pi as u32 })
                .collect();
            if !loads.is_empty() {
                out.push(ReductionChain {
                    store: InstRef { func, block: bid, idx: si as u32 },
                    bin: InstRef { func, block: bid, idx: bin_idx as u32 },
                    loads,
                });
            }
        }
    }
    out
}

/// The `(block, index-in-block)` sites of reduction stores in loop `l` —
/// the shape `autopar_like` keys its tolerated-conflict set on.
pub fn reduction_store_sites(module: &Module, func: FuncId, l: LoopId) -> HashSet<(BlockId, usize)> {
    reduction_chains(module, func, l)
        .iter()
        .map(|c| (c.store.block, c.store.idx as usize))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::{FunctionBuilder, Module};

    #[test]
    fn affine_algebra() {
        let i = AffineExpr::var(VReg(3));
        let two = AffineExpr::constant(2);
        let e = i.mul(&two).add(&AffineExpr::constant(5), false); // 2i + 5
        match &e {
            AffineExpr::Affine { constant, coeffs } => {
                assert_eq!(*constant, 5);
                assert_eq!(coeffs.get(&3), Some(&2));
            }
            AffineExpr::Unknown => panic!("expected affine"),
        }
        // i - i collapses to the constant 0 with no coefficients.
        assert_eq!(i.add(&i, true), AffineExpr::constant(0));
        // i * i is not affine.
        assert_eq!(i.mul(&i), AffineExpr::Unknown);
    }

    #[test]
    fn summary_and_conflicts_on_a_map_loop() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let out = m.add_array("b", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let y = b.bin(BinOp::Mul, x, x);
            b.store(out, iv, y);
        });
        let f = b.finish();
        let iv = m.funcs[f.index()].loops[l.index()].induction.unwrap();
        let s = summarize_loop(&m, f, l);
        assert_eq!(s.accesses.len(), 2);
        assert!(!s.has_call);
        assert!(s.commutative_recs.is_empty());
        let w = s.accesses.iter().find(|a| a.is_write).unwrap();
        // a[i] vs b[i]: different arrays — callers skip those; same-array
        // self-pair w vs w is distance 0 (strong SIV, no carried conflict).
        assert!(!conflicts(iv, w, w));
    }

    #[test]
    fn reduction_chain_is_recognised_with_refs() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let s = m.add_array("s", Ty::F64, 1);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        let zero = b.const_i64(0);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let cur = b.load(s, zero);
            let nxt = b.bin(BinOp::Add, cur, x);
            b.store(s, zero, nxt);
        });
        let f = b.finish();
        let chains = reduction_chains(&m, f, l);
        assert_eq!(chains.len(), 1);
        let c = &chains[0];
        assert_eq!(c.loads.len(), 1, "only the s[0] load joins the chain");
        assert!(c.store.idx > c.bin.idx && c.bin.idx > c.loads[0].idx);
        assert_eq!(
            reduction_store_sites(&m, f, l),
            [(c.store.block, c.store.idx as usize)].into_iter().collect()
        );
    }

    #[test]
    fn strict_walk_rejects_conditionally_reassigned_index() {
        // j = 0; if (a[i] < 1) j = i; dst[j] = src[i] — the guarded
        // scatter shape. Flow-insensitively j looks like `i` (the last
        // write), which is what the modelled tools see; the strict walk
        // must refuse to call the write index affine.
        let mut m = Module::new("t");
        let key = m.add_array("k", Ty::F64, 16);
        let src = m.add_array("s", Ty::F64, 16);
        let dst = m.add_array("d", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let t = b.const_f64(1.0);
        let z = b.const_i64(0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let k = b.load(key, iv);
            let c = b.bin(BinOp::CmpLt, k, t);
            let j = b.copy(z);
            b.if_then(c, |b| b.copy_to(j, iv));
            let v = b.load(src, iv);
            b.store(dst, j, v);
        });
        let f = b.finish();
        let iv = m.funcs[f.index()].loops[l.index()].induction.unwrap();
        let write = |s: &LoopSummary| s.accesses.iter().find(|a| a.is_write).unwrap().clone();
        let plain = write(&summarize_loop(&m, f, l));
        assert_eq!(plain.index, AffineExpr::var(iv), "tool model sees the last write");
        let strict = write(&summarize_loop_strict(&m, f, l));
        assert_eq!(strict.index, AffineExpr::Unknown, "proof mode must not");
    }

    #[test]
    fn carried_distance_conflicts() {
        // a[i] write vs a[i-1] read: distance 1, carried.
        let acc = |c: i64, coeff: i64, write: bool| Access {
            arr: ArrayId(0),
            index: AffineExpr::var(VReg(7)).scale(coeff).add(&AffineExpr::constant(c), false),
            is_write: write,
            block: BlockId(0),
            idx_in_block: 0,
        };
        let iv = VReg(7);
        assert!(conflicts(iv, &acc(0, 1, true), &acc(-1, 1, false)));
        // Stride-2 write vs odd-offset read: GCD test proves independence.
        assert!(!conflicts(iv, &acc(0, 2, true), &acc(1, 2, false)));
        // Same fixed cell every iteration.
        assert!(conflicts(iv, &acc(0, 0, true), &acc(0, 0, false)));
        // Distinct fixed cells never meet.
        assert!(!conflicts(iv, &acc(0, 0, true), &acc(1, 0, false)));
    }
}
