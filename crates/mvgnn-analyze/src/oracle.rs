//! The static loop-carried dependence oracle.
//!
//! [`analyze_loop`] classifies one loop into a three-point lattice:
//!
//! - [`Verdict::ProvablyParallel`] — every conflicting access pair is
//!   cleared by an exact test (ZIV/strong-SIV/GCD) or sits on a
//!   recognised reduction chain, every scalar recurrence is commutative
//!   or privatizable, and the loop body is call-free.
//! - [`Verdict::ProvablyDependent`] — a genuine loop-carried dependence
//!   is exhibited in closed form: an affine access pair with a definite
//!   carried distance smaller than the (statically known) trip count
//!   executing on every iteration, or a non-commutative scalar
//!   recurrence whose value provably crosses iterations.
//! - [`Verdict::Unknown`] — everything else.
//!
//! Both definite verdicts are *claims* audited against dynamic ground
//! truth by the `mvgnn-bench` `lint` binary, so each carries provenance:
//! [`Fact`]s naming the accesses and the deciding test, plus the
//! `excused` reduction-chain instructions whose observed carried
//! dependences are benign by commutativity.

use crate::affine::{conflicts, reduction_chains, summarize_loop_strict, Access, AffineExpr};
use crate::dataflow::liveness;
use mvgnn_ir::inst::{BinOp, Inst, InstRef};
use mvgnn_ir::module::{FuncId, Function, LoopId, LoopInfo, Module};
use mvgnn_ir::types::{ArrayId, VReg};
use mvgnn_ir::{Cfg, Dominators};
use std::collections::{HashMap, HashSet};

/// The oracle's three-point verdict lattice (`Unknown` is the top).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Iterations are provably independent (modulo excused reductions).
    ProvablyParallel,
    /// A loop-carried dependence provably exists and is not a reduction.
    ProvablyDependent,
    /// The analysis cannot decide either way.
    Unknown,
}

impl Verdict {
    /// Stable lowercase name (used by the JSON audit report).
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::ProvablyParallel => "parallel",
            Verdict::ProvablyDependent => "dependent",
            Verdict::Unknown => "unknown",
        }
    }
}

/// The exact dependence test that decided an access pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepTest {
    /// Zero-induction-variable test: both indices are iteration-invariant.
    Ziv,
    /// Strong SIV: equal induction coefficients, constant distance.
    StrongSiv,
    /// GCD (Banerjee-class) divisibility test on distinct coefficients.
    Gcd,
}

impl DepTest {
    /// Stable lowercase name (used by the JSON audit report).
    pub fn as_str(self) -> &'static str {
        match self {
            DepTest::Ziv => "ziv",
            DepTest::StrongSiv => "strong-siv",
            DepTest::Gcd => "gcd",
        }
    }
}

/// One provenance record backing the verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fact {
    /// An access pair was proven independent across iterations.
    PairIndependent {
        /// First access.
        a: InstRef,
        /// Second access.
        b: InstRef,
        /// Deciding test.
        test: DepTest,
    },
    /// An access pair provably conflicts across iterations.
    PairDependent {
        /// First access.
        a: InstRef,
        /// Second access.
        b: InstRef,
        /// Deciding test.
        test: DepTest,
        /// Carried iteration distance when the test produces one
        /// (`None` for ZIV same-cell conflicts, which recur at every
        /// distance).
        distance: Option<i64>,
    },
    /// An access pair may conflict but nothing definite is known.
    PairMayConflict {
        /// First access.
        a: InstRef,
        /// Second access.
        b: InstRef,
    },
    /// A store participates in a recognised reduction chain; carried
    /// dependences among the chain's instructions are benign.
    ReductionChain {
        /// The chain's store.
        store: InstRef,
    },
    /// A scalar updated commutatively across iterations (`acc = acc ⊕ x`)
    /// — parallelisable as a reduction.
    CommutativeRecurrence {
        /// The accumulator register.
        reg: VReg,
    },
    /// A self-updating scalar whose value never crosses iterations: each
    /// iteration can get a private copy.
    PrivatizableScalar {
        /// The register.
        reg: VReg,
    },
    /// A non-commutative scalar recurrence whose value crosses iterations.
    NonCommutativeRecurrence {
        /// The register.
        reg: VReg,
    },
    /// An access whose index is not affine in the induction registers.
    NonAffineAccess {
        /// The access instruction.
        at: InstRef,
    },
    /// The loop body contains a call the oracle does not look through.
    OpaqueCall,
    /// The loop is not a counted `for` (no induction register).
    NonCountedLoop,
}

/// Statically recovered counted-loop bounds (SCEV-lite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopBounds {
    /// Initial induction value.
    pub lo: i64,
    /// Exclusive upper bound (`iv < hi`).
    pub hi: i64,
    /// Per-iteration increment (positive).
    pub step: i64,
    /// Number of iterations executed.
    pub trip: i64,
}

/// Per-array access-section summary for one loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArraySection {
    /// Number of reads of the array inside the loop.
    pub reads: usize,
    /// Number of writes.
    pub writes: usize,
    /// Every access index is affine in the induction registers.
    pub all_affine: bool,
}

/// The oracle's full output for one loop.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// The verdict.
    pub verdict: Verdict,
    /// Provenance records explaining it.
    pub facts: Vec<Fact>,
    /// Reduction-chain instructions whose observed carried dependences
    /// are benign; the corpus auditor excuses dynamic dependences whose
    /// endpoints both sit in this set.
    pub excused: HashSet<InstRef>,
    /// Per-array section summaries (reads/writes/affine-ness).
    pub sections: HashMap<ArrayId, ArraySection>,
    /// Memory accesses seen inside the loop.
    pub n_accesses: usize,
    /// Same-array pairs with at least one write that were tested.
    pub n_pairs_tested: usize,
    /// Statically recovered bounds, when the loop is a recognisable
    /// counted `for` over constants.
    pub bounds: Option<LoopBounds>,
}

impl OracleReport {
    /// Width of [`OracleReport::feature_vec`].
    pub const FEAT_DIM: usize = 10;

    /// The oracle's facts as a dense feature vector, broadcast onto the
    /// loop's PEG nodes when static features are enabled in
    /// `mvgnn-embed` (off by default; ablation-ready):
    /// verdict one-hot (3), ln1p access/pair counts (2), reduction and
    /// non-affine indicators (2), bounds-known flag, ln1p trip count,
    /// ln1p written-array count.
    pub fn feature_vec(&self) -> [f32; Self::FEAT_DIM] {
        let mut v = [0.0f32; Self::FEAT_DIM];
        match self.verdict {
            Verdict::ProvablyParallel => v[0] = 1.0,
            Verdict::ProvablyDependent => v[1] = 1.0,
            Verdict::Unknown => v[2] = 1.0,
        }
        v[3] = (self.n_accesses as f32).ln_1p();
        v[4] = (self.n_pairs_tested as f32).ln_1p();
        v[5] = f32::from(self.facts.iter().any(|f| {
            matches!(f, Fact::ReductionChain { .. } | Fact::CommutativeRecurrence { .. })
        }));
        v[6] = f32::from(self.facts.iter().any(|f| matches!(f, Fact::NonAffineAccess { .. })));
        v[7] = f32::from(self.bounds.is_some());
        v[8] = self.bounds.map_or(0.0, |b| (b.trip as f32).ln_1p());
        v[9] = (self.sections.values().filter(|s| s.writes > 0).count() as f32).ln_1p();
        v
    }
}

/// Single-def integer-constant registers of `f`.
fn const_i64_regs(f: &Function) -> HashMap<VReg, i64> {
    let mut def_count: HashMap<VReg, u32> = HashMap::new();
    let mut vals: HashMap<VReg, i64> = HashMap::new();
    for blk in &f.blocks {
        for inst in &blk.insts {
            if let Some(d) = inst.def() {
                *def_count.entry(d).or_insert(0) += 1;
            }
            if let Inst::Const { dst, value } = inst {
                if let Some(v) = value.as_i64() {
                    vals.insert(*dst, v);
                }
            }
        }
    }
    vals.retain(|r, _| def_count.get(r) == Some(&1));
    vals
}

/// Recognise the counted-loop shape the builder emits — `iv = lo` before
/// the header, `iv < hi` in the header, `iv += step` in the latch, all
/// three operands single-def integer constants — and return the bounds.
pub fn loop_bounds(f: &Function, info: &LoopInfo) -> Option<LoopBounds> {
    let iv = info.induction?;
    let consts = const_i64_regs(f);
    let loop_set: HashSet<_> = {
        let mut s = vec![info.header, info.latch];
        s.extend(info.body.iter().copied());
        s.into_iter().collect()
    };

    // The builder's counted-loop shape defines `iv` exactly twice: the
    // init copy before the header and the increment in the latch. Any
    // other def means `iv` is not a simple counter.
    let mut lo = None;
    let mut step = None;
    for (bi, blk) in f.blocks.iter().enumerate() {
        let bid = mvgnn_ir::module::BlockId(bi as u32);
        for inst in &blk.insts {
            if inst.def() != Some(iv) {
                continue;
            }
            match inst {
                Inst::Copy { src, .. } if !loop_set.contains(&bid) && lo.is_none() => {
                    lo = Some(*consts.get(src)?);
                }
                Inst::Bin { op: BinOp::Add, lhs, rhs, .. }
                    if bid == info.latch && step.is_none() =>
                {
                    let other = if *lhs == iv {
                        *rhs
                    } else if *rhs == iv {
                        *lhs
                    } else {
                        return None;
                    };
                    step = Some(*consts.get(&other)?);
                }
                _ => return None,
            }
        }
    }

    // iv < hi in the header.
    let header = &f.blocks[info.header.index()];
    let hi = header.insts.iter().find_map(|inst| match inst {
        Inst::Bin { op: BinOp::CmpLt, lhs, rhs, .. } if *lhs == iv => consts.get(rhs).copied(),
        _ => None,
    })?;

    let (lo, step) = (lo?, step?);
    if step <= 0 {
        return None;
    }
    let trip = if hi > lo { (hi - lo + step - 1) / step } else { 0 };
    Some(LoopBounds { lo, hi, step, trip })
}

/// Which exact test applies to an affine pair with matching outer
/// coefficients, and what it concludes.
enum PairResult {
    Independent(DepTest),
    /// Conflict with closed-form evidence strong enough to *claim* a
    /// dependence (subject to trip-count and execution checks).
    Definite(DepTest, Option<i64>),
    /// Conflict, but only as a may-dependence.
    May,
}

fn test_pair(iv: VReg, a: &Access, b: &Access) -> PairResult {
    let (
        AffineExpr::Affine { constant: c1, coeffs: k1 },
        AffineExpr::Affine { constant: c2, coeffs: k2 },
    ) = (&a.index, &b.index)
    else {
        return PairResult::May;
    };
    let strip = |k: &std::collections::BTreeMap<u32, i64>| -> Vec<(u32, i64)> {
        k.iter().filter(|&(&r, _)| r != iv.0).map(|(&r, &c)| (r, c)).collect()
    };
    if strip(k1) != strip(k2) {
        return PairResult::May;
    }
    let x = k1.get(&iv.0).copied().unwrap_or(0);
    let y = k2.get(&iv.0).copied().unwrap_or(0);
    let dc = c2 - c1;
    match (x, y) {
        (0, 0) => {
            if dc == 0 {
                // Same fixed cell touched on every iteration.
                PairResult::Definite(DepTest::Ziv, None)
            } else {
                PairResult::Independent(DepTest::Ziv)
            }
        }
        (x, y) if x == y => {
            if dc == 0 {
                // Same cell in the same iteration only: loop-independent.
                PairResult::Independent(DepTest::StrongSiv)
            } else if dc % x == 0 {
                PairResult::Definite(DepTest::StrongSiv, Some((dc / x).abs()))
            } else {
                PairResult::Independent(DepTest::StrongSiv)
            }
        }
        (x, y) => {
            let g = crate::affine::gcd(x, y);
            if g != 0 && dc % g == 0 {
                // Solvable, but existence of an in-bounds solution is not
                // established — a may-dependence only.
                PairResult::May
            } else {
                PairResult::Independent(DepTest::Gcd)
            }
        }
    }
}

/// Run the oracle on loop `l` of `func`.
pub fn analyze_loop(module: &Module, func: FuncId, l: LoopId) -> OracleReport {
    let f = &module.funcs[func.index()];
    let info = &f.loops[l.index()];
    // Strict symbolic walk: a proof must not trust last-write-wins on
    // conditionally reassigned registers (see `summarize_loop_strict`).
    let summary = summarize_loop_strict(module, func, l);
    let chains = reduction_chains(module, func, l);
    let excused: HashSet<InstRef> = chains.iter().flat_map(|c| c.refs()).collect();
    let red_arrays: HashSet<ArrayId> = chains
        .iter()
        .filter_map(|c| match &f.blocks[c.store.block.index()].insts[c.store.idx as usize] {
            Inst::Store { arr, .. } => Some(*arr),
            _ => None,
        })
        .collect();
    let bounds = loop_bounds(f, info);

    let mut sections: HashMap<ArrayId, ArraySection> = HashMap::new();
    for a in &summary.accesses {
        let s = sections.entry(a.arr).or_insert(ArraySection { all_affine: true, ..Default::default() });
        if a.is_write {
            s.writes += 1;
        } else {
            s.reads += 1;
        }
        if matches!(a.index, AffineExpr::Unknown) {
            s.all_affine = false;
        }
    }

    let mut facts: Vec<Fact> = Vec::new();
    let mut provably_parallel = true;
    let mut dependent = false;

    let Some(iv) = info.induction else {
        facts.push(Fact::NonCountedLoop);
        return OracleReport {
            verdict: Verdict::Unknown,
            facts,
            excused,
            sections,
            n_accesses: summary.accesses.len(),
            n_pairs_tested: 0,
            bounds,
        };
    };

    if summary.has_call {
        facts.push(Fact::OpaqueCall);
        provably_parallel = false;
    }
    for a in &summary.accesses {
        if matches!(a.index, AffineExpr::Unknown) {
            facts.push(Fact::NonAffineAccess { at: a.inst_ref(func) });
        }
    }

    // Scalar recurrences: the dataflow engine distinguishes genuine
    // cross-iteration accumulators (live into the header) from body
    // temporaries that privatisation handles.
    let live = liveness(f);
    let cfg = Cfg::new(f);
    let dom = Dominators::compute(&cfg);
    for &r in &summary.noncommutative_recs {
        if live.live_in_at(info.header, r) {
            facts.push(Fact::NonCommutativeRecurrence { reg: r });
            provably_parallel = false;
            // The update must execute every iteration for the value chain
            // to be provably unbroken; its def block dominating the latch
            // guarantees that. Trip ≥ 2 makes the dependence non-vacuous.
            let update_dominates = f.insts_with_refs(func).any(|(ir, inst, _)| {
                inst.def() == Some(r)
                    && matches!(inst, Inst::Bin { dst, lhs, rhs, .. } if dst == lhs || dst == rhs)
                    && f.loop_of_block(ir.block) == Some(l)
                    && dom.dominates(ir.block, info.latch)
            });
            if update_dominates && bounds.is_some_and(|b| b.trip >= 2) {
                dependent = true;
            }
        } else {
            facts.push(Fact::PrivatizableScalar { reg: r });
        }
    }
    for &r in &summary.commutative_recs {
        if live.live_in_at(info.header, r) {
            facts.push(Fact::CommutativeRecurrence { reg: r });
        } else {
            facts.push(Fact::PrivatizableScalar { reg: r });
        }
    }

    for c in &chains {
        facts.push(Fact::ReductionChain { store: c.store });
    }

    // A definite memory dependence claim additionally needs the accesses
    // to execute on every iteration of exactly this loop.
    let executes_every_iteration = |a: &Access| {
        f.loop_of_block(a.block) == Some(l) && dom.dominates(a.block, info.latch)
    };

    let mut n_pairs = 0usize;
    for (i, a) in summary.accesses.iter().enumerate() {
        for b in &summary.accesses[i..] {
            if a.arr != b.arr || (!a.is_write && !b.is_write) {
                continue;
            }
            if red_arrays.contains(&a.arr) {
                continue; // tolerated: implemented as a reduction
            }
            n_pairs += 1;
            let (ra, rb) = (a.inst_ref(func), b.inst_ref(func));
            if !conflicts(iv, a, b) {
                let test = match test_pair(iv, a, b) {
                    PairResult::Independent(t) => t,
                    // `conflicts` said no, so the pair is independent even
                    // if the exact-test classifier is more conservative.
                    _ => DepTest::Gcd,
                };
                facts.push(Fact::PairIndependent { a: ra, b: rb, test });
                continue;
            }
            provably_parallel = false;
            match test_pair(iv, a, b) {
                PairResult::Definite(test, distance) => {
                    let trip_ok = match (distance, bounds) {
                        (Some(d), Some(bd)) => d != 0 && d < bd.trip,
                        (None, Some(bd)) => bd.trip >= 2, // ZIV same cell
                        _ => false,
                    };
                    if trip_ok && executes_every_iteration(a) && executes_every_iteration(b) {
                        facts.push(Fact::PairDependent { a: ra, b: rb, test, distance });
                        dependent = true;
                    } else {
                        facts.push(Fact::PairMayConflict { a: ra, b: rb });
                    }
                }
                _ => facts.push(Fact::PairMayConflict { a: ra, b: rb }),
            }
        }
    }

    let verdict = if dependent {
        Verdict::ProvablyDependent
    } else if provably_parallel {
        Verdict::ProvablyParallel
    } else {
        Verdict::Unknown
    };
    OracleReport {
        verdict,
        facts,
        excused,
        sections,
        n_accesses: summary.accesses.len(),
        n_pairs_tested: n_pairs,
        bounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::FunctionBuilder;

    fn analyze(m: &Module, f: FuncId, l: LoopId) -> OracleReport {
        analyze_loop(m, f, l)
    }

    #[test]
    fn map_loop_is_provably_parallel() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let out = m.add_array("b", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let y = b.bin(BinOp::Mul, x, x);
            b.store(out, iv, y);
        });
        let f = b.finish();
        let r = analyze(&m, f, l);
        assert_eq!(r.verdict, Verdict::ProvablyParallel);
        assert_eq!(r.bounds, Some(LoopBounds { lo: 0, hi: 16, step: 1, trip: 16 }));
        assert!(r.facts.iter().any(|x| matches!(x, Fact::PairIndependent { .. })));
        let feats = r.feature_vec();
        assert_eq!(feats[0], 1.0);
        assert_eq!(feats[7], 1.0);
    }

    #[test]
    fn in_place_recurrence_is_provably_dependent() {
        // a[i] = a[i-1] + 1: carried RAW distance 1.
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::I64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(1), b.const_i64(16), b.const_i64(1));
        let one = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let p = b.bin(BinOp::Sub, iv, one);
            let x = b.load(a, p);
            let y = b.bin(BinOp::Add, x, one);
            b.store(a, iv, y);
        });
        let f = b.finish();
        let r = analyze(&m, f, l);
        assert_eq!(r.verdict, Verdict::ProvablyDependent, "{:?}", r.facts);
        assert!(r.facts.iter().any(|x| matches!(
            x,
            Fact::PairDependent { test: DepTest::StrongSiv, distance: Some(1), .. }
        )));
    }

    #[test]
    fn memory_reduction_is_parallel_with_excuses() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let s = m.add_array("s", Ty::F64, 1);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        let zero = b.const_i64(0);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let cur = b.load(s, zero);
            let nxt = b.bin(BinOp::Add, cur, x);
            b.store(s, zero, nxt);
        });
        let f = b.finish();
        let r = analyze(&m, f, l);
        assert_eq!(r.verdict, Verdict::ProvablyParallel, "{:?}", r.facts);
        assert!(!r.excused.is_empty(), "chain instructions must be excused");
        assert!(r.facts.iter().any(|x| matches!(x, Fact::ReductionChain { .. })));
    }

    #[test]
    fn scalar_accumulator_crossing_iterations() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        let acc = b.const_f64(0.0);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            b.bin_to(acc, BinOp::Add, acc, x);
        });
        b.ret(Some(acc));
        let f = b.finish();
        let r = analyze(&m, f, l);
        assert_eq!(r.verdict, Verdict::ProvablyParallel, "{:?}", r.facts);
        assert!(r.facts.iter().any(|x| matches!(x, Fact::CommutativeRecurrence { .. })));
    }

    #[test]
    fn non_commutative_recurrence_is_dependent() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        let acc = b.const_f64(100.0);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let scaled = b.bin(BinOp::Mul, x, acc);
            b.bin_to(acc, BinOp::Sub, acc, scaled);
        });
        b.ret(Some(acc));
        let f = b.finish();
        let r = analyze(&m, f, l);
        assert_eq!(r.verdict, Verdict::ProvablyDependent, "{:?}", r.facts);
        assert!(r.facts.iter().any(|x| matches!(x, Fact::NonCommutativeRecurrence { .. })));
    }

    #[test]
    fn call_in_body_is_unknown() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        // Pure helper: f(x) = x + x.
        let mut hb = FunctionBuilder::new(&mut m, "helper", 1);
        let p = hb.param(0);
        let d = hb.bin(BinOp::Add, p, p);
        hb.ret(Some(d));
        let helper = hb.finish();
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let y = b.call(helper, &[x]);
            b.store(a, iv, y);
        });
        let f = b.finish();
        let r = analyze(&m, f, l);
        assert_eq!(r.verdict, Verdict::Unknown, "{:?}", r.facts);
        assert!(r.facts.iter().any(|x| matches!(x, Fact::OpaqueCall)));
    }

    #[test]
    fn indirect_write_is_unknown_not_dependent() {
        // out[idx[i]] = 1.0: may conflict, never a definite claim.
        let mut m = Module::new("t");
        let idx = m.add_array("idx", Ty::I64, 16);
        let out = m.add_array("out", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        let one = b.const_f64(1.0);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let j = b.load(idx, iv);
            b.store(out, j, one);
        });
        let f = b.finish();
        let r = analyze(&m, f, l);
        assert_eq!(r.verdict, Verdict::Unknown, "{:?}", r.facts);
        assert!(r.facts.iter().any(|x| matches!(x, Fact::PairMayConflict { .. })));
        assert!(r.facts.iter().any(|x| matches!(x, Fact::NonAffineAccess { .. })));
        let feats = r.feature_vec();
        assert_eq!(feats[2], 1.0);
        assert_eq!(feats[6], 1.0);
    }

    #[test]
    fn bounds_recognition() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 64);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(3), b.const_i64(20), b.const_i64(4));
        let one = b.const_f64(1.0);
        let l = b.for_loop(lo, hi, st, |b, iv| b.store(a, iv, one));
        let f = b.finish();
        let func = &m.funcs[f.index()];
        let bd = loop_bounds(func, &func.loops[l.index()]).unwrap();
        assert_eq!(bd, LoopBounds { lo: 3, hi: 20, step: 4, trip: 5 });
    }

    #[test]
    fn sections_summarise_arrays() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let out = m.add_array("b", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            b.store(out, iv, x);
        });
        let f = b.finish();
        let r = analyze(&m, f, l);
        let sa = &r.sections[&a];
        let sb = &r.sections[&out];
        assert_eq!((sa.reads, sa.writes, sa.all_affine), (1, 0, true));
        assert_eq!((sb.reads, sb.writes, sb.all_affine), (0, 1, true));
    }

    #[test]
    fn conditionally_reassigned_write_index_is_unknown() {
        // The guarded-scatter shape: `j = 0; if (k[i] < 1) j = i;
        // d[j] = s[i]`. A trace where the guard always fires shows no
        // conflict, and the flow-insensitive tool walk sees `d[i]` — but
        // iterations *can* collide on `d[0]`, so a ProvablyParallel
        // verdict here would be a false proof.
        use mvgnn_ir::inst::BinOp;
        let mut m = Module::new("t");
        let key = m.add_array("k", Ty::F64, 16);
        let src = m.add_array("s", Ty::F64, 16);
        let dst = m.add_array("d", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let t = b.const_f64(1.0);
        let z = b.const_i64(0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(16), b.const_i64(1));
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let k = b.load(key, iv);
            let c = b.bin(BinOp::CmpLt, k, t);
            let j = b.copy(z);
            b.if_then(c, |b| b.copy_to(j, iv));
            let v = b.load(src, iv);
            b.store(dst, j, v);
        });
        let f = b.finish();
        let r = analyze(&m, f, l);
        assert_eq!(r.verdict, Verdict::Unknown);
        assert!(r.facts.iter().any(|x| matches!(x, Fact::NonAffineAccess { .. })));
    }
}
