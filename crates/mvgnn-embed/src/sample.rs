//! Assembly of one loop sub-PEG into the model-ready sample.

use crate::awe::structural_distributions;
use crate::inst2vec::Inst2Vec;
use mvgnn_gnn::gcn_adjacency;
use mvgnn_graph::{AwVocab, Csr, WalkConfig};
use mvgnn_ir::module::{FuncId, LoopId};
use mvgnn_peg::{PegNodeKind, SubPeg};
use mvgnn_profiler::DynamicFeatures;
use mvgnn_tensor::SparseMatrix;

/// Feature-assembly configuration.
#[derive(Debug, Clone)]
pub struct SampleConfig {
    /// Anonymous walk configuration (structural view).
    pub walks: WalkConfig,
    /// Anonymous-walk vocabulary length (must equal `walks.walk_len`).
    pub walk_len: usize,
    /// Include containment edges in the GCN adjacency. The loop node is a
    /// hub touching every member, so these edges shortcut all pairwise
    /// distances and can over-smooth small graphs; they always remain
    /// visible through the node edge-census features and the walks.
    pub hierarchy_in_adjacency: bool,
    /// Width of the optional static-oracle feature block appended to each
    /// node row (see `mvgnn_analyze::OracleReport::feature_vec`). `0`
    /// disables the block entirely — the default, so the paper's feature
    /// layout is unchanged unless an ablation opts in.
    pub static_dim: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        Self {
            walks: WalkConfig::default(),
            walk_len: WalkConfig::default().walk_len,
            hierarchy_in_adjacency: false,
            static_dim: 0,
        }
    }
}

/// Number of node-kind indicator features (func/loop/load/store/call/
/// compute/control).
pub const KIND_DIM: usize = 7;

/// Number of incident-edge summary features: in/out × {def-use,
/// carried RAW, carried WAR, carried WAW, loop-independent dep,
/// hierarchy}, log-scaled counts. The paper's PEG edges are typed
/// (`⟨SINK, TYPE, SOURCE⟩`) and a plain GCN adjacency loses that, so the
/// types are folded into node features. Keeping the carried kinds apart
/// is what separates a reduction cycle (carried RAW + WAW on one cell)
/// from a serial recurrence (carried RAW only).
pub const EDGE_DIM: usize = 12;

/// One classification sample: a loop sub-PEG with both views' features.
#[derive(Debug, Clone)]
pub struct GraphSample {
    /// Node count.
    pub n: usize,
    /// Symmetric-normalised GCN propagation operator.
    pub adj: SparseMatrix,
    /// Node-feature view matrix, row-major `n × node_dim`.
    pub node_feats: Vec<f32>,
    /// Node-feature width: inst2vec dim + [`KIND_DIM`] + [`EDGE_DIM`] +
    /// Table I dims + `SampleConfig::static_dim` (0 unless enabled).
    pub node_dim: usize,
    /// Structural view: anonymous-walk distributions `n × aw_vocab`.
    pub struct_dists: Vec<f32>,
    /// Anonymous-walk vocabulary size.
    pub aw_vocab: usize,
    /// inst2vec token ids of the sub-PEG nodes in source-line order — the
    /// statement sequence consumed by sequence baselines (NCC).
    pub token_ids: Vec<usize>,
    /// Owning function.
    pub func: FuncId,
    /// The classified loop.
    pub l: LoopId,
    /// Binary label (1 = parallelizable), if known.
    pub label: Option<usize>,
}

fn kind_onehot(kind: &PegNodeKind, token: &str) -> [f32; KIND_DIM] {
    let mut v = [0.0f32; KIND_DIM];
    let idx = match kind {
        PegNodeKind::Func(_) => 0,
        PegNodeKind::Loop(_, _) => 1,
        PegNodeKind::Cu(_) => match token {
            "load" => 2,
            "store" => 3,
            t if t.starts_with("call") => 4,
            "condbr" | "ret" => 6,
            _ => 5,
        },
    };
    v[idx] = 1.0;
    v
}

/// Build the sample for one sub-PEG.
///
/// Node features are `inst2vec(token) ⊕ kind-onehot ⊕ dynamic features`;
/// the Table I vector is loop-level, so it is broadcast onto every node
/// of the loop's sub-PEG (the paper concatenates the DiscoPoP dynamic
/// features into the node features) — this also guarantees the signal
/// survives SortPooling regardless of which nodes rank into the top-k.
pub fn build_sample(
    sub: &SubPeg,
    inst2vec: &Inst2Vec,
    dyn_feats: &DynamicFeatures,
    cfg: &SampleConfig,
    label: Option<usize>,
) -> GraphSample {
    build_sample_with_static(sub, inst2vec, dyn_feats, None, cfg, label)
}

/// [`build_sample`] with an optional static-oracle feature block.
///
/// When `cfg.static_dim > 0`, `static_feats` must be a slice of exactly
/// that width; like the dynamic features it is loop-level and broadcast
/// onto every node row. When `cfg.static_dim == 0` the argument is
/// ignored and the layout is identical to [`build_sample`].
pub fn build_sample_with_static(
    sub: &SubPeg,
    inst2vec: &Inst2Vec,
    dyn_feats: &DynamicFeatures,
    static_feats: Option<&[f32]>,
    cfg: &SampleConfig,
    label: Option<usize>,
) -> GraphSample {
    assert_eq!(cfg.walk_len, cfg.walks.walk_len, "walk length mismatch in config");
    let static_vec: &[f32] = if cfg.static_dim == 0 { &[] } else { static_feats.unwrap_or(&[]) };
    assert_eq!(
        static_vec.len(),
        cfg.static_dim,
        "static feature width must match cfg.static_dim"
    );
    let n = sub.graph.node_count();
    let e_dim = inst2vec.dim();
    let node_dim = e_dim + KIND_DIM + EDGE_DIM + DynamicFeatures::DIM + cfg.static_dim;

    // Incident-edge census per node.
    let mut edge_feats = vec![[0.0f32; EDGE_DIM]; n];
    for e in sub.graph.edge_ids() {
        let (src, dst) = sub.graph.endpoints(e);
        let w = sub.graph.edge(e);
        let slot = match w.kind {
            mvgnn_peg::PegEdgeKind::DefUse => 0,
            mvgnn_peg::PegEdgeKind::Dep(k) if w.carried => match k {
                mvgnn_profiler::DepKind::Raw => 1,
                mvgnn_profiler::DepKind::War => 2,
                mvgnn_profiler::DepKind::Waw => 3,
            },
            mvgnn_peg::PegEdgeKind::Dep(_) => 4,
            mvgnn_peg::PegEdgeKind::Hierarchy => 5,
        };
        edge_feats[src.index()][slot * 2] += 1.0;
        edge_feats[dst.index()][slot * 2 + 1] += 1.0;
    }
    for f in &mut edge_feats {
        for x in f.iter_mut() {
            *x = x.ln_1p();
        }
    }

    let dyn_vec = dyn_feats.to_vec();
    let mut node_feats = Vec::with_capacity(n * node_dim);
    for id in sub.graph.node_ids() {
        let node = sub.graph.node(id);
        // Mean of member-statement embeddings: compound compute CUs keep
        // every opcode visible instead of collapsing to one token.
        let mut emb = vec![0.0f32; e_dim];
        for tok in &node.tokens {
            for (e, &x) in emb.iter_mut().zip(inst2vec.embed(tok)) {
                *e += x;
            }
        }
        let inv = 1.0 / node.tokens.len().max(1) as f32;
        for e in &mut emb {
            *e *= inv;
        }
        node_feats.extend_from_slice(&emb);
        node_feats.extend_from_slice(&kind_onehot(&node.kind, &node.token));
        node_feats.extend_from_slice(&edge_feats[id.index()]);
        node_feats.extend_from_slice(&dyn_vec);
        node_feats.extend_from_slice(static_vec);
    }

    let vocab = AwVocab::new(cfg.walk_len);
    let struct_dists = structural_distributions(&sub.graph, &vocab, cfg.walks);

    // Statement sequence in source order for sequence-model baselines
    // (every member statement, as NCC consumes raw statement streams).
    let mut order: Vec<_> = sub.graph.node_ids().collect();
    order.sort_by_key(|&id| (sub.graph.node(id).line_span, id));
    let token_ids: Vec<usize> = order
        .iter()
        .flat_map(|&id| sub.graph.node(id).tokens.iter().map(|t| inst2vec.id(t)))
        .collect();

    let edges: Vec<(u32, u32)> = sub
        .graph
        .edge_ids()
        .filter(|&e| {
            cfg.hierarchy_in_adjacency
                || sub.graph.edge(e).kind != mvgnn_peg::PegEdgeKind::Hierarchy
        })
        .map(|e| {
            let (s, d) = sub.graph.endpoints(e);
            (s.0, d.0)
        })
        .collect();
    let csr = Csr::from_edges(sub.graph.node_count(), &edges);
    let adj = gcn_adjacency(&csr);

    GraphSample {
        n,
        adj,
        node_feats,
        node_dim,
        struct_dists,
        aw_vocab: vocab.size(),
        token_ids,
        func: sub.func,
        l: sub.l,
        label,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst2vec::Inst2VecConfig;
    use mvgnn_ir::inst::BinOp;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::{FunctionBuilder, Module};
    use mvgnn_peg::{build_peg, loop_subpeg};
    use mvgnn_profiler::{build_cus, loop_features, profile_module};

    fn make_sample() -> GraphSample {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let out = m.add_array("b", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(16);
        let st = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let y = b.bin(BinOp::Mul, x, x);
            b.store(out, iv, y);
        });
        let f = b.finish();
        let cus = build_cus(&m);
        let res = profile_module(&m, f, &[]).unwrap();
        let peg = build_peg(&m, &cus, &res.deps);
        let sub = loop_subpeg(&peg, &m, &cus, f, l);
        let feats = loop_features(&m, f, l, &res.deps, &res.loops[&(f, l)]);
        let i2v = Inst2Vec::train(
            &[&m],
            &Inst2VecConfig { dim: 8, epochs: 2, negatives: 2, lr: 0.05, seed: 1 },
        );
        build_sample(&sub, &i2v, &feats, &SampleConfig::default(), Some(1))
    }

    #[test]
    fn sample_shapes_are_consistent() {
        let s = make_sample();
        assert!(s.n >= 4, "expected several PEG nodes, got {}", s.n);
        assert_eq!(s.node_feats.len(), s.n * s.node_dim);
        assert_eq!(s.struct_dists.len(), s.n * s.aw_vocab);
        assert_eq!(s.adj.rows(), s.n);
        assert_eq!(s.node_dim, 8 + KIND_DIM + EDGE_DIM + 7);
        assert_eq!(s.label, Some(1));
    }

    #[test]
    fn every_node_carries_the_loop_dynamic_features() {
        let s = make_sample();
        let dyn_off = s.node_dim - 7;
        let first = s.node_feats[dyn_off..s.node_dim].to_vec();
        assert!(first.iter().any(|&x| x != 0.0), "dynamics must be non-zero");
        for r in 1..s.n {
            let dynpart = &s.node_feats[r * s.node_dim + dyn_off..(r + 1) * s.node_dim];
            assert_eq!(dynpart, &first[..], "row {r} differs");
        }
    }

    #[test]
    fn edge_features_count_incident_edges() {
        let s = make_sample();
        let off = 8 + KIND_DIM;
        // At least one node must see a def-use edge and one a hierarchy
        // edge (the loop node contains members).
        let mut any_defuse = false;
        let mut any_hier = false;
        for r in 0..s.n {
            let ef = &s.node_feats[r * s.node_dim + off..r * s.node_dim + off + EDGE_DIM];
            if ef[0] > 0.0 || ef[1] > 0.0 {
                any_defuse = true;
            }
            if ef[10] > 0.0 || ef[11] > 0.0 {
                any_hier = true;
            }
        }
        assert!(any_defuse, "def-use census missing");
        assert!(any_hier, "hierarchy census missing");
    }

    #[test]
    fn kind_onehot_is_one_hot() {
        let s = make_sample();
        for r in 0..s.n {
            let kind_part = &s.node_feats[r * s.node_dim + 8..r * s.node_dim + 8 + KIND_DIM];
            let ones = kind_part.iter().filter(|&&x| x == 1.0).count();
            let zeros = kind_part.iter().filter(|&&x| x == 0.0).count();
            assert_eq!(ones, 1);
            assert_eq!(zeros, KIND_DIM - 1);
        }
    }

    #[test]
    fn token_sequence_covers_every_statement() {
        let s = make_sample();
        assert!(s.token_ids.len() >= s.n, "at least one token per node");
    }

    #[test]
    fn static_block_is_appended_only_when_enabled() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let out = m.add_array("b", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(16);
        let st = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let y = b.bin(BinOp::Mul, x, x);
            b.store(out, iv, y);
        });
        let f = b.finish();
        let cus = build_cus(&m);
        let res = profile_module(&m, f, &[]).unwrap();
        let peg = build_peg(&m, &cus, &res.deps);
        let sub = loop_subpeg(&peg, &m, &cus, f, l);
        let feats = loop_features(&m, f, l, &res.deps, &res.loops[&(f, l)]);
        let i2v = Inst2Vec::train(
            &[&m],
            &Inst2VecConfig { dim: 8, epochs: 2, negatives: 2, lr: 0.05, seed: 1 },
        );
        let plain = build_sample(&sub, &i2v, &feats, &SampleConfig::default(), None);
        let cfg = SampleConfig { static_dim: 3, ..SampleConfig::default() };
        let stat = [0.5f32, 0.0, 2.0];
        let s = build_sample_with_static(&sub, &i2v, &feats, Some(&stat), &cfg, None);
        assert_eq!(s.node_dim, plain.node_dim + 3);
        assert_eq!(s.node_feats.len(), s.n * s.node_dim);
        for r in 0..s.n {
            let tail = &s.node_feats[(r + 1) * s.node_dim - 3..(r + 1) * s.node_dim];
            assert_eq!(tail, &stat[..], "row {r} static block differs");
        }
        // Explicitly passing None with static_dim == 0 is the plain layout.
        let again = build_sample_with_static(
            &sub,
            &i2v,
            &feats,
            None,
            &SampleConfig::default(),
            None,
        );
        assert_eq!(again.node_dim, plain.node_dim);
        assert_eq!(again.node_feats, plain.node_feats);
    }

    #[test]
    fn struct_rows_are_distributions() {
        let s = make_sample();
        for row in s.struct_dists.chunks(s.aw_vocab) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row sums to {sum}");
        }
    }
}
