//! # mvgnn-embed — code embeddings and per-sample feature assembly
//!
//! - [`inst2vec`]: a from-scratch reimplementation of the inst2vec method
//!   (Ben-Nun et al., NeurIPS'18): a vocabulary of normalised IR statement
//!   tokens embedded by skip-gram with negative sampling over
//!   contextual-flow neighbourhoods (intra-block adjacency + def-use).
//! - [`awe`]: anonymous-walk structural features per PEG node (paper
//!   Eq. 3/4), produced by the seeded walk sampler of `mvgnn-graph`.
//! - [`sample`]: assembles one loop sub-PEG into the model-ready
//!   [`sample::GraphSample`] — normalised adjacency, node-feature matrix
//!   (inst2vec ⊕ node-kind ⊕ Table I dynamics) and anonymous-walk
//!   distribution matrix.

pub mod awe;
pub mod batch;
pub mod cache;
pub mod inst2vec;
pub mod sample;

pub use awe::structural_distributions;
pub use batch::GraphBatch;
pub use cache::{sample_fingerprint, sample_fingerprint_with_static, CacheStats, FeatureCache};
pub use inst2vec::{Inst2Vec, Inst2VecConfig};
pub use sample::{build_sample, build_sample_with_static, GraphSample, SampleConfig};
