//! Content-keyed memoisation of per-loop featurisation.
//!
//! Building a [`GraphSample`] is the expensive half of module inference:
//! the anonymous-walk sampler alone walks every node `γ` times, and the
//! node-feature packing touches every token embedding. When the same
//! loop is classified repeatedly — watch-mode re-analysis, parameter
//! sweeps, engine benchmarks — the sub-PEG and dynamic features rarely
//! change, so the [`FeatureCache`] keys the finished sample by a
//! fingerprint of everything `build_sample` reads and replays it.
//!
//! The fingerprint ([`sample_fingerprint`]) covers the sub-PEG's nodes
//! (kind, tokens, line spans), its edges (endpoints, type, carriedness),
//! the loop's dynamic feature vector bit-for-bit, and the walk/assembly
//! configuration — any change to any input changes the key, so a hit is
//! exactly a replay of a previous `build_sample` call. One cache serves
//! one inst2vec embedding (the embedding table is deliberately not
//! hashed; pass its dimension so differently-sized embedders at least
//! never collide).
//!
//! Entries are shared out as `Arc<GraphSample>` — hits clone a pointer,
//! not the matrices — and eviction is least-recently-used at a fixed
//! capacity.

use crate::sample::{GraphSample, SampleConfig};
use mvgnn_peg::{PegEdgeKind, PegNodeKind, SubPeg};
use mvgnn_profiler::{DepKind, DynamicFeatures};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Hit/miss counters of a [`FeatureCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build the sample.
    pub misses: u64,
    /// Entries currently resident.
    pub len: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

struct Entry {
    sample: Arc<GraphSample>,
    last_used: u64,
}

/// LRU-bounded, content-keyed store of finished [`GraphSample`]s.
pub struct FeatureCache {
    capacity: usize,
    map: HashMap<u64, Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl FeatureCache {
    /// A cache holding at most `capacity` samples (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            map: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats { hits: self.hits, misses: self.misses, len: self.map.len() }
    }

    /// The sample under `key`, building (and caching) it on a miss. The
    /// least-recently-used entry is evicted when the cache is full.
    pub fn get_or_insert_with(
        &mut self,
        key: u64,
        build: impl FnOnce() -> GraphSample,
    ) -> Arc<GraphSample> {
        self.clock += 1;
        if let Some(e) = self.map.get_mut(&key) {
            self.hits += 1;
            e.last_used = self.clock;
            return Arc::clone(&e.sample);
        }
        self.misses += 1;
        if self.map.len() >= self.capacity {
            // O(len) scan; caches are small (hundreds of loops) and the
            // scan only runs on a miss at capacity.
            if let Some(&oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.map.remove(&oldest);
            }
        }
        let sample = Arc::new(build());
        self.map.insert(key, Entry { sample: Arc::clone(&sample), last_used: self.clock });
        sample
    }
}

/// Fingerprint of everything [`crate::build_sample`] reads: the sub-PEG
/// content, the dynamic feature vector (bit-exact) and the assembly
/// configuration. `i2v_dim` stands in for the embedding table — use one
/// cache per trained inst2vec.
pub fn sample_fingerprint(
    sub: &SubPeg,
    dyn_feats: &DynamicFeatures,
    cfg: &SampleConfig,
    i2v_dim: usize,
) -> u64 {
    let mut h = DefaultHasher::new();
    sub.func.0.hash(&mut h);
    sub.l.0.hash(&mut h);
    sub.loop_node.0.hash(&mut h);
    sub.graph.node_count().hash(&mut h);
    for id in sub.graph.node_ids() {
        let n = sub.graph.node(id);
        match &n.kind {
            PegNodeKind::Func(f) => {
                0u8.hash(&mut h);
                f.0.hash(&mut h);
            }
            PegNodeKind::Loop(f, l) => {
                1u8.hash(&mut h);
                f.0.hash(&mut h);
                l.0.hash(&mut h);
            }
            PegNodeKind::Cu(c) => {
                2u8.hash(&mut h);
                c.0.hash(&mut h);
            }
        }
        n.token.hash(&mut h);
        n.tokens.hash(&mut h);
        n.line_span.hash(&mut h);
    }
    for e in sub.graph.edge_ids() {
        let (s, d) = sub.graph.endpoints(e);
        s.0.hash(&mut h);
        d.0.hash(&mut h);
        let w = sub.graph.edge(e);
        match w.kind {
            PegEdgeKind::DefUse => 0u8.hash(&mut h),
            PegEdgeKind::Dep(DepKind::Raw) => 1u8.hash(&mut h),
            PegEdgeKind::Dep(DepKind::War) => 2u8.hash(&mut h),
            PegEdgeKind::Dep(DepKind::Waw) => 3u8.hash(&mut h),
            PegEdgeKind::Hierarchy => 4u8.hash(&mut h),
        }
        w.carried.hash(&mut h);
    }
    for x in dyn_feats.to_vec() {
        x.to_bits().hash(&mut h);
    }
    cfg.walk_len.hash(&mut h);
    cfg.walks.walk_len.hash(&mut h);
    cfg.walks.walks_per_node.hash(&mut h);
    cfg.walks.seed.hash(&mut h);
    cfg.hierarchy_in_adjacency.hash(&mut h);
    i2v_dim.hash(&mut h);
    h.finish()
}

/// [`sample_fingerprint`] extended with the static-analysis feature
/// slice appended by `build_sample_with_static`.
///
/// The base fingerprint deliberately ignores static features (it
/// predates them, and persisted keys must keep their meaning); when a
/// caller attaches an oracle feature vector the key must change with it,
/// or two samples differing only in their static slice would collide.
/// `None` hashes differently from `Some(&[])`, and the configured
/// `static_dim` is folded in so the same bits at a different width never
/// alias.
pub fn sample_fingerprint_with_static(
    sub: &SubPeg,
    dyn_feats: &DynamicFeatures,
    cfg: &SampleConfig,
    i2v_dim: usize,
    static_feats: Option<&[f32]>,
) -> u64 {
    let base = sample_fingerprint(sub, dyn_feats, cfg, i2v_dim);
    let mut h = DefaultHasher::new();
    base.hash(&mut h);
    cfg.static_dim.hash(&mut h);
    match static_feats {
        None => 0u8.hash(&mut h),
        Some(xs) => {
            1u8.hash(&mut h);
            xs.len().hash(&mut h);
            for x in xs {
                x.to_bits().hash(&mut h);
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> GraphSample {
        GraphSample {
            n,
            adj: mvgnn_tensor::SparseMatrix::from_triplets(n, n, &[]),
            node_feats: vec![n as f32; n * 2],
            node_dim: 2,
            struct_dists: vec![0.5; n * 2],
            aw_vocab: 2,
            token_ids: vec![0; n],
            func: mvgnn_ir::module::FuncId(0),
            l: mvgnn_ir::module::LoopId(n as u32),
            label: None,
        }
    }

    #[test]
    fn hits_and_misses_are_accounted() {
        let mut c = FeatureCache::new(4);
        let a = c.get_or_insert_with(1, || toy(3));
        let b = c.get_or_insert_with(1, || unreachable!("second lookup must hit"));
        assert!(Arc::ptr_eq(&a, &b), "hit must return the cached sample");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_coldest_entry_at_capacity() {
        let mut c = FeatureCache::new(2);
        c.get_or_insert_with(1, || toy(1));
        c.get_or_insert_with(2, || toy(2));
        // Touch key 1 so key 2 is now the least recently used.
        c.get_or_insert_with(1, || unreachable!());
        c.get_or_insert_with(3, || toy(3));
        assert_eq!(c.len(), 2);
        // Key 2 was evicted: looking it up rebuilds (and that insert
        // evicts key 1, now the coldest of {1, 3}).
        let before = c.stats().misses;
        c.get_or_insert_with(2, || toy(2));
        assert_eq!(c.stats().misses, before + 1);
        // Key 3 survived both evictions.
        c.get_or_insert_with(3, || unreachable!("key 3 must still be resident"));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut c = FeatureCache::new(0);
        c.get_or_insert_with(1, || toy(1));
        c.get_or_insert_with(2, || toy(2));
        assert_eq!(c.len(), 1);
    }
}
