//! Anonymous-walk structural features for PEG nodes (paper Eq. 3/4).

use mvgnn_graph::{AwVocab, Csr, DiGraph, WalkConfig, WalkSampler};

/// Per-node anonymous-walk distributions over a sub-PEG.
///
/// Walks run on the *undirected* skeleton of the graph (local shape, not
/// direction, is what separates stencil from reduction motifs). Returns a
/// row-major `n × vocab.size()` matrix.
pub fn structural_distributions<N, E>(
    graph: &DiGraph<N, E>,
    vocab: &AwVocab,
    cfg: WalkConfig,
) -> Vec<f32> {
    let csr = Csr::undirected_from_digraph(graph);
    let sampler = WalkSampler::new(cfg);
    sampler.node_distributions(&csr, vocab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_graph::DiGraph;

    fn cfg() -> WalkConfig {
        WalkConfig { walk_len: 4, walks_per_node: 128, seed: 17 }
    }

    #[test]
    fn distribution_shape_and_normalisation() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        let vocab = AwVocab::new(4);
        let d = structural_distributions(&g, &vocab, cfg());
        assert_eq!(d.len(), 3 * vocab.size());
        for row in d.chunks(vocab.size()) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn join_and_chain_structures_separate() {
        // Reduction-like join (4 sources into 1 sink) vs a 5-chain.
        let mut join: DiGraph<(), ()> = DiGraph::new();
        let sink = join.add_node(());
        for _ in 0..4 {
            let s = join.add_node(());
            join.add_edge(s, sink, ());
        }
        let mut chain: DiGraph<(), ()> = DiGraph::new();
        let nodes: Vec<_> = (0..5).map(|_| chain.add_node(())).collect();
        for w in nodes.windows(2) {
            chain.add_edge(w[0], w[1], ());
        }
        let vocab = AwVocab::new(4);
        let dj = structural_distributions(&join, &vocab, cfg());
        let dc = structural_distributions(&chain, &vocab, cfg());
        // Mean distributions must differ noticeably.
        let vs = vocab.size();
        let mean = |d: &[f32]| -> Vec<f32> {
            let n = d.len() / vs;
            let mut m = vec![0.0f32; vs];
            for row in d.chunks(vs) {
                for (mm, &x) in m.iter_mut().zip(row) {
                    *mm += x / n as f32;
                }
            }
            m
        };
        let l1: f32 = mean(&dj).iter().zip(mean(&dc)).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 > 0.15, "join vs chain L1 distance {l1}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        let vocab = AwVocab::new(4);
        assert_eq!(
            structural_distributions(&g, &vocab, cfg()),
            structural_distributions(&g, &vocab, cfg())
        );
    }
}
