//! inst2vec reimplementation: skip-gram with negative sampling over
//! contextual-flow neighbourhoods of normalised IR statements.
//!
//! Ben-Nun et al. train on the "contextual flow graph" of LLVM IR —
//! statements are neighbours if they are adjacent in a basic block or
//! connected by data flow. Our IR exposes both relations directly.

use mvgnn_ir::module::{FuncId, Module};
use mvgnn_tensor::PersistError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Token reserved for out-of-vocabulary statements.
pub const UNK: &str = "<unk>";

const ARTIFACT_MAGIC: &[u8; 4] = b"MVI2";
const ARTIFACT_VERSION: u32 = 1;

/// Training configuration.
#[derive(Debug, Clone)]
pub struct Inst2VecConfig {
    /// Embedding width (paper: 200).
    pub dim: usize,
    /// Epochs over the pair corpus.
    pub epochs: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Initial learning rate (linearly decayed).
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Inst2VecConfig {
    fn default() -> Self {
        Self { dim: 200, epochs: 5, negatives: 5, lr: 0.05, seed: 0x1257 }
    }
}

/// Trained statement embedding: token → dense row.
#[derive(Debug, Clone)]
pub struct Inst2Vec {
    vocab: HashMap<String, usize>,
    matrix: Vec<f32>,
    dim: usize,
}

impl Inst2Vec {
    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size (including the UNK row).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Token id (UNK id when unseen).
    pub fn id(&self, token: &str) -> usize {
        self.vocab.get(token).copied().unwrap_or_else(|| self.vocab[UNK])
    }

    /// Embedding row for a token.
    pub fn embed(&self, token: &str) -> &[f32] {
        let id = self.id(token);
        &self.matrix[id * self.dim..(id + 1) * self.dim]
    }

    /// All tokens in the vocabulary.
    pub fn tokens(&self) -> impl Iterator<Item = &str> {
        self.vocab.keys().map(String::as_str)
    }

    /// Cosine similarity between two tokens' embeddings.
    pub fn cosine(&self, a: &str, b: &str) -> f32 {
        let ea = self.embed(a);
        let eb = self.embed(b);
        let dot: f32 = ea.iter().zip(eb).map(|(x, y)| x * y).sum();
        let na: f32 = ea.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = eb.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Train on a corpus of modules.
    pub fn train(corpus: &[&Module], cfg: &Inst2VecConfig) -> Inst2Vec {
        // Build the vocabulary.
        let mut vocab: HashMap<String, usize> = HashMap::new();
        vocab.insert(UNK.to_string(), 0);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for m in corpus {
            for (fi, f) in m.funcs.iter().enumerate() {
                let func = FuncId(fi as u32);
                let insts: Vec<_> = f.insts_with_refs(func).collect();
                let intern = |tok: String, vocab: &mut HashMap<String, usize>| -> u32 {
                    let next = vocab.len();
                    *vocab.entry(tok).or_insert(next) as u32
                };
                let ids: Vec<u32> =
                    insts.iter().map(|(_, i, _)| intern(i.token(), &mut vocab)).collect();
                // Context 1: intra-block adjacency (window 2).
                for (k, (r, _, _)) in insts.iter().enumerate() {
                    for off in 1..=2usize {
                        if k + off < insts.len() && insts[k + off].0.block == r.block {
                            pairs.push((ids[k], ids[k + off]));
                            pairs.push((ids[k + off], ids[k]));
                        }
                    }
                }
                // Context 2: def-use flow.
                let mut defs: HashMap<u32, Vec<usize>> = HashMap::new();
                for (k, (_, inst, _)) in insts.iter().enumerate() {
                    if let Some(d) = inst.def() {
                        defs.entry(d.0).or_default().push(k);
                    }
                }
                for (k, (_, inst, _)) in insts.iter().enumerate() {
                    for u in inst.uses() {
                        if let Some(ds) = defs.get(&u.0) {
                            for &d in ds {
                                if d != k {
                                    pairs.push((ids[d], ids[k]));
                                }
                            }
                        }
                    }
                }
            }
        }
        let v = vocab.len();
        let dim = cfg.dim;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let bound = 0.5 / dim as f32;
        let mut input: Vec<f32> = (0..v * dim).map(|_| rng.random_range(-bound..bound)).collect();
        let mut output: Vec<f32> = vec![0.0; v * dim];

        // SGNS training.
        let total_steps = (cfg.epochs * pairs.len()).max(1);
        let mut step = 0usize;
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        for _epoch in 0..cfg.epochs {
            // Fisher-Yates shuffle for stochasticity.
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for &pi in &order {
                let (center, ctx) = pairs[pi];
                let lr = cfg.lr * (1.0 - step as f32 / total_steps as f32).max(0.05);
                step += 1;
                let crow = center as usize * dim;
                let mut grad_center = vec![0.0f32; dim];
                // One positive and `negatives` negative targets.
                for neg in 0..=cfg.negatives {
                    let (target, label) = if neg == 0 {
                        (ctx as usize, 1.0f32)
                    } else {
                        (rng.random_range(0..v), 0.0f32)
                    };
                    let trow = target * dim;
                    let mut dot = 0.0f32;
                    for d in 0..dim {
                        dot += input[crow + d] * output[trow + d];
                    }
                    let pred = 1.0 / (1.0 + (-dot).exp());
                    let g = (pred - label) * lr;
                    for d in 0..dim {
                        grad_center[d] += g * output[trow + d];
                        output[trow + d] -= g * input[crow + d];
                    }
                }
                for d in 0..dim {
                    input[crow + d] -= grad_center[d];
                }
            }
        }
        Inst2Vec { vocab, matrix: input, dim }
    }

    /// Serialise the trained embedding to its on-disk artifact form.
    ///
    /// Layout (little-endian): `magic "MVI2" | version u32 | dim u32 |
    /// vocab u32 | (token len u32, token bytes)* in id order |
    /// matrix checksum u64 | matrix f32 × vocab·dim`. The vocabulary is
    /// written in id order, so the artifact is byte-identical for
    /// identical embeddings regardless of hash-map iteration order —
    /// shard workers fitting nothing and loading this read-only see
    /// exactly the embedding the vocabulary pass trained.
    pub fn encode(&self) -> Vec<u8> {
        let v = self.vocab.len();
        let mut by_id: Vec<&str> = vec![""; v];
        for (tok, &id) in &self.vocab {
            by_id[id] = tok;
        }
        let mut buf = Vec::with_capacity(16 + v * 12 + self.matrix.len() * 4);
        buf.extend_from_slice(ARTIFACT_MAGIC);
        buf.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.dim as u32).to_le_bytes());
        buf.extend_from_slice(&(v as u32).to_le_bytes());
        for tok in by_id {
            buf.extend_from_slice(&(tok.len() as u32).to_le_bytes());
            buf.extend_from_slice(tok.as_bytes());
        }
        let matrix_bytes: Vec<u8> =
            self.matrix.iter().flat_map(|x| x.to_le_bytes()).collect();
        buf.extend_from_slice(&fnv1a(&matrix_bytes).to_le_bytes());
        buf.extend_from_slice(&matrix_bytes);
        buf
    }

    /// Parse an artifact produced by [`Inst2Vec::encode`]. Every
    /// structural defect — bad magic, unsupported version, truncation,
    /// duplicate or missing tokens, checksum mismatch — is a typed
    /// [`PersistError`], never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Inst2Vec, PersistError> {
        let mut cur = Cursor { bytes, off: 0 };
        if cur.take(4)? != ARTIFACT_MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = cur.u32()?;
        if version != ARTIFACT_VERSION {
            return Err(PersistError::BadVersion(version));
        }
        let dim = cur.u32()? as usize;
        let v = cur.u32()? as usize;
        if dim == 0 || v == 0 {
            return Err(PersistError::LayoutMismatch(format!(
                "embedding must be non-empty (dim {dim}, vocab {v})"
            )));
        }
        let mut vocab: HashMap<String, usize> = HashMap::with_capacity(v);
        for id in 0..v {
            let len = cur.u32()? as usize;
            let tok = std::str::from_utf8(cur.take(len)?)
                .map_err(|_| PersistError::LayoutMismatch(format!("token {id} is not UTF-8")))?;
            if vocab.insert(tok.to_string(), id).is_some() {
                return Err(PersistError::LayoutMismatch(format!("duplicate token {tok:?}")));
            }
        }
        if vocab.get(UNK) != Some(&0) {
            return Err(PersistError::LayoutMismatch(format!(
                "token id 0 must be {UNK:?}"
            )));
        }
        let checksum = cur.u64()?;
        let matrix_bytes = cur.take(v * dim * 4)?;
        if cur.off != bytes.len() {
            return Err(PersistError::LayoutMismatch(format!(
                "{} trailing bytes after the matrix",
                bytes.len() - cur.off
            )));
        }
        if fnv1a(matrix_bytes) != checksum {
            return Err(PersistError::LayoutMismatch("matrix checksum mismatch".into()));
        }
        let matrix: Vec<f32> = matrix_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(Inst2Vec { vocab, matrix, dim })
    }
}

/// Bounds-checked little-endian cursor for [`Inst2Vec::decode`].
struct Cursor<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.off.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.bytes.len() {
            return Err(PersistError::Truncated);
        }
        let s = &self.bytes[self.off..end];
        self.off = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_ir::inst::BinOp;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::FunctionBuilder;

    fn corpus_module(seed_ops: &[BinOp]) -> Module {
        let mut m = Module::new("c");
        let a = m.add_array("a", Ty::F64, 64);
        let out = m.add_array("b", Ty::F64, 64);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(64);
        let st = b.const_i64(1);
        for &op in seed_ops {
            b.for_loop(lo, hi, st, |b, iv| {
                let x = b.load(a, iv);
                let y = b.bin(op, x, x);
                b.store(out, iv, y);
            });
        }
        b.finish();
        m
    }

    fn quick_cfg() -> Inst2VecConfig {
        Inst2VecConfig { dim: 16, epochs: 8, negatives: 4, lr: 0.08, seed: 5 }
    }

    #[test]
    fn vocabulary_covers_corpus_tokens() {
        let m = corpus_module(&[BinOp::Add, BinOp::Mul]);
        let emb = Inst2Vec::train(&[&m], &quick_cfg());
        for tok in ["load", "store", "bin.add", "bin.mul", "const.i64", "br", "condbr", "ret"] {
            assert_ne!(emb.id(tok), emb.id(UNK), "missing {tok}");
        }
        assert_eq!(emb.embed("load").len(), 16);
    }

    #[test]
    fn unknown_token_maps_to_unk() {
        let m = corpus_module(&[BinOp::Add]);
        let emb = Inst2Vec::train(&[&m], &quick_cfg());
        assert_eq!(emb.id("bin.frobnicate"), emb.id(UNK));
        assert_eq!(emb.embed("bin.frobnicate"), emb.embed(UNK));
    }

    #[test]
    fn similar_contexts_embed_closer_than_dissimilar() {
        // bin.add and bin.mul appear in identical contexts (load → op →
        // store); they should be closer to each other than to `condbr`.
        let m = corpus_module(&[BinOp::Add, BinOp::Mul, BinOp::Add, BinOp::Mul]);
        let emb = Inst2Vec::train(&[&m], &quick_cfg());
        let close = emb.cosine("bin.add", "bin.mul");
        let far = emb.cosine("bin.add", "condbr");
        assert!(
            close > far,
            "add/mul cosine {close} should exceed add/condbr cosine {far}"
        );
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let m = corpus_module(&[BinOp::Add]);
        let e1 = Inst2Vec::train(&[&m], &quick_cfg());
        let e2 = Inst2Vec::train(&[&m], &quick_cfg());
        assert_eq!(e1.embed("load"), e2.embed("load"));
    }

    #[test]
    fn artifact_roundtrip_is_bit_identical() {
        let m = corpus_module(&[BinOp::Add, BinOp::Mul]);
        let emb = Inst2Vec::train(&[&m], &quick_cfg());
        let bytes = emb.encode();
        let back = Inst2Vec::decode(&bytes).unwrap();
        assert_eq!(back.dim(), emb.dim());
        assert_eq!(back.vocab_size(), emb.vocab_size());
        for tok in emb.tokens() {
            assert_eq!(back.id(tok), emb.id(tok), "{tok}");
            assert_eq!(back.embed(tok), emb.embed(tok), "{tok}");
        }
        // Id-ordered layout: re-encoding the decoded embedding is
        // byte-identical even though HashMap iteration order differs.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn corrupt_artifacts_are_typed_errors() {
        let m = corpus_module(&[BinOp::Add]);
        let emb = Inst2Vec::train(&[&m], &quick_cfg());
        let bytes = emb.encode();
        // Every truncation point fails gracefully.
        for cut in 0..bytes.len() {
            assert!(Inst2Vec::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(Inst2Vec::decode(&bad), Err(PersistError::BadMagic)));
        // Unsupported version.
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert!(matches!(Inst2Vec::decode(&bad), Err(PersistError::BadVersion(9))));
        // A flipped matrix byte fails the checksum.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x20;
        match Inst2Vec::decode(&bad) {
            Err(PersistError::LayoutMismatch(msg)) => {
                assert!(msg.contains("checksum"), "{msg}")
            }
            other => panic!("expected checksum failure, got {other:?}"),
        }
        // Trailing garbage is refused.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(Inst2Vec::decode(&bad).is_err());
    }

    #[test]
    fn embeddings_are_finite_and_nonzero() {
        let m = corpus_module(&[BinOp::Add, BinOp::Sub]);
        let emb = Inst2Vec::train(&[&m], &quick_cfg());
        for tok in ["load", "store", "bin.add"] {
            let e = emb.embed(tok);
            assert!(e.iter().all(|x| x.is_finite()));
            assert!(e.iter().any(|&x| x != 0.0));
        }
    }
}
