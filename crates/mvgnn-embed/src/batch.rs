//! Packed mini-batches of [`GraphSample`]s for one-tape batched
//! execution.
//!
//! A [`GraphBatch`] stacks the per-sample matrices row-wise and joins the
//! adjacencies into one block-diagonal operator, so a single
//! forward/backward pass over the tape covers every graph of the batch:
//! sparse propagation cannot mix rows across blocks, dense layers act
//! row-wise, and the segment-aware pooling/convolution primitives in
//! `mvgnn-tensor` keep the read-out per-graph. `offsets` records where
//! each graph's rows live in the packed layout.

use crate::sample::GraphSample;
use mvgnn_tensor::{SparseMatrix, Workspace};

/// A mini-batch of graphs in packed (block-diagonal) layout.
#[derive(Debug, Clone)]
pub struct GraphBatch {
    /// Number of graphs packed.
    pub batch: usize,
    /// Total node count across the batch (`offsets[batch]`).
    pub total_n: usize,
    /// Block-diagonal GCN propagation operator over all graphs.
    pub adj: SparseMatrix,
    /// Packed node-feature matrix, row-major `total_n × node_dim`.
    pub node_feats: Vec<f32>,
    /// Node-feature width (identical across the batch).
    pub node_dim: usize,
    /// Packed anonymous-walk distributions, `total_n × aw_vocab`.
    pub struct_dists: Vec<f32>,
    /// Anonymous-walk vocabulary size (identical across the batch).
    pub aw_vocab: usize,
    /// Node offsets: graph `g` owns packed rows
    /// `offsets[g]..offsets[g + 1]`; length `batch + 1`.
    pub offsets: Vec<usize>,
}

impl GraphBatch {
    /// Pack samples into one batch. All samples must agree on `node_dim`
    /// and `aw_vocab` (they come from one dataset / one model
    /// configuration); panics otherwise, and on an empty slice.
    pub fn from_samples(samples: &[&GraphSample]) -> Self {
        assert!(!samples.is_empty(), "cannot batch zero samples");
        let node_dim = samples[0].node_dim;
        let aw_vocab = samples[0].aw_vocab;
        let total_n: usize = samples.iter().map(|s| s.n).sum();
        let mut node_feats = Vec::with_capacity(total_n * node_dim);
        let mut struct_dists = Vec::with_capacity(total_n * aw_vocab);
        let mut offsets = Vec::with_capacity(samples.len() + 1);
        offsets.push(0usize);
        for s in samples {
            assert_eq!(s.node_dim, node_dim, "node_dim mismatch within batch");
            assert_eq!(s.aw_vocab, aw_vocab, "aw_vocab mismatch within batch");
            node_feats.extend_from_slice(&s.node_feats);
            struct_dists.extend_from_slice(&s.struct_dists);
            offsets.push(offsets[offsets.len() - 1] + s.n);
        }
        let adjs: Vec<&SparseMatrix> = samples.iter().map(|s| &s.adj).collect();
        let adj = SparseMatrix::block_diag(&adjs);
        Self { batch: samples.len(), total_n, adj, node_feats, node_dim, struct_dists, aw_vocab, offsets }
    }

    /// A batch of one (the single-sample compatibility path).
    pub fn single(sample: &GraphSample) -> Self {
        Self::from_samples(&[sample])
    }

    /// [`Self::from_samples`] with every backing buffer drawn from a
    /// [`Workspace`] pool: once warm, packing a batch allocates nothing
    /// (bar the transient per-call adjacency pointer list). Contents are
    /// identical to [`Self::from_samples`]; return the batch with
    /// [`Self::recycle`] when done.
    pub fn from_samples_in(ws: &mut Workspace, samples: &[&GraphSample]) -> Self {
        assert!(!samples.is_empty(), "cannot batch zero samples");
        let node_dim = samples[0].node_dim;
        let aw_vocab = samples[0].aw_vocab;
        let total_n: usize = samples.iter().map(|s| s.n).sum();
        let mut node_feats = ws.acquire_f32(total_n * node_dim);
        let mut struct_dists = ws.acquire_f32(total_n * aw_vocab);
        let mut offsets = ws.acquire_usize(samples.len() + 1);
        let mut row = 0usize;
        for (g, s) in samples.iter().enumerate() {
            assert_eq!(s.node_dim, node_dim, "node_dim mismatch within batch");
            assert_eq!(s.aw_vocab, aw_vocab, "aw_vocab mismatch within batch");
            offsets[g] = row;
            node_feats[row * node_dim..(row + s.n) * node_dim]
                .copy_from_slice(&s.node_feats);
            struct_dists[row * aw_vocab..(row + s.n) * aw_vocab]
                .copy_from_slice(&s.struct_dists);
            row += s.n;
        }
        offsets[samples.len()] = row;
        let adjs: Vec<&SparseMatrix> = samples.iter().map(|s| &s.adj).collect();
        let adj = SparseMatrix::block_diag_in(ws, &adjs);
        Self { batch: samples.len(), total_n, adj, node_feats, node_dim, struct_dists, aw_vocab, offsets }
    }

    /// Return a batch built by [`Self::from_samples_in`] to its pool so
    /// the next packing reuses its buffers.
    pub fn recycle(self, ws: &mut Workspace) {
        ws.release_f32(self.node_feats);
        ws.release_f32(self.struct_dists);
        ws.release_usize(self.offsets);
        self.adj.recycle(ws);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_sample(n: usize, node_dim: usize, aw_vocab: usize, fill: f32) -> GraphSample {
        let edges: Vec<(u32, u32)> =
            (0..n.saturating_sub(1)).map(|i| (i as u32, i as u32 + 1)).collect();
        let csr = mvgnn_graph::Csr::from_edges(n, &edges);
        GraphSample {
            n,
            adj: mvgnn_gnn::gcn_adjacency(&csr),
            node_feats: vec![fill; n * node_dim],
            node_dim,
            struct_dists: vec![1.0 / aw_vocab as f32; n * aw_vocab],
            aw_vocab,
            token_ids: vec![0; n],
            func: mvgnn_ir::module::FuncId(0),
            l: mvgnn_ir::module::LoopId(0),
            label: None,
        }
    }

    #[test]
    fn packing_concatenates_rows_and_offsets() {
        let a = toy_sample(3, 4, 5, 0.5);
        let b = toy_sample(2, 4, 5, -1.0);
        let batch = GraphBatch::from_samples(&[&a, &b]);
        assert_eq!(batch.batch, 2);
        assert_eq!(batch.total_n, 5);
        assert_eq!(batch.offsets, vec![0, 3, 5]);
        assert_eq!(batch.node_feats.len(), 5 * 4);
        assert_eq!(&batch.node_feats[..12], &a.node_feats[..]);
        assert_eq!(&batch.node_feats[12..], &b.node_feats[..]);
        assert_eq!(batch.struct_dists.len(), 5 * 5);
        assert_eq!(batch.adj.rows(), 5);
    }

    #[test]
    fn single_is_a_batch_of_one() {
        let a = toy_sample(4, 2, 3, 0.25);
        let batch = GraphBatch::single(&a);
        assert_eq!(batch.batch, 1);
        assert_eq!(batch.offsets, vec![0, 4]);
        assert_eq!(batch.node_feats, a.node_feats);
        assert_eq!(batch.adj, a.adj);
    }

    #[test]
    fn pooled_packing_matches_and_stops_allocating() {
        let a = toy_sample(3, 4, 5, 0.5);
        let b = toy_sample(2, 4, 5, -1.0);
        let plain = GraphBatch::from_samples(&[&a, &b]);
        let mut ws = Workspace::new();
        // Cold pass populates the pool; every later pass must hit it.
        GraphBatch::from_samples_in(&mut ws, &[&a, &b]).recycle(&mut ws);
        let cold_misses = ws.stats().misses;
        for pass in 0..3 {
            let pooled = GraphBatch::from_samples_in(&mut ws, &[&a, &b]);
            assert_eq!(pooled.node_feats, plain.node_feats, "pass {pass}");
            assert_eq!(pooled.struct_dists, plain.struct_dists);
            assert_eq!(pooled.offsets, plain.offsets);
            assert_eq!(pooled.adj, plain.adj);
            pooled.recycle(&mut ws);
        }
        assert_eq!(ws.stats().misses, cold_misses, "warm packing must not allocate");
    }

    #[test]
    #[should_panic(expected = "node_dim mismatch")]
    fn dim_mismatch_panics() {
        let a = toy_sample(2, 4, 5, 0.0);
        let b = toy_sample(2, 3, 5, 0.0);
        let _ = GraphBatch::from_samples(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_batch_panics() {
        let _ = GraphBatch::from_samples(&[]);
    }
}
