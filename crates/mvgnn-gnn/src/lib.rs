//! # mvgnn-gnn — graph convolution and the DGCNN classifier
//!
//! - [`gcn`]: Kipf-Welling graph convolution layers and propagation
//!   operator construction from a CSR adjacency
//! - [`sortpool`]: SortPooling row ordering (Zhang et al., AAAI'18)
//! - [`dgcnn`]: the Deep Graph CNN used by both MV-GNN views — graph
//!   conv stack → SortPooling → two 1-D convolutions → dense read-out

pub mod dgcnn;
pub mod gcn;
pub mod sortpool;

pub use dgcnn::{Dgcnn, DgcnnConfig};
pub use gcn::{gcn_adjacency, GcnLayer};
pub use sortpool::sort_order;
