//! The Deep Graph CNN (Fig. 6): graph conv stack → SortPooling →
//! 1-D convolutions → dense read-out.
//!
//! Both MV-GNN views instantiate this architecture; the multi-view model
//! consumes [`Dgcnn::embed`] (the input of the final dense layer, as the
//! paper specifies) while the single-view baselines use
//! [`Dgcnn::logits`].

use crate::gcn::GcnLayer;
use crate::sortpool::sort_order;
use mvgnn_nn::{Conv1d, Linear};
use mvgnn_tensor::tape::{Params, Tape, Var};
use mvgnn_tensor::SparseMatrix;
use rand::rngs::StdRng;

/// DGCNN hyperparameters.
#[derive(Debug, Clone)]
pub struct DgcnnConfig {
    /// Input node-feature width.
    pub in_dim: usize,
    /// Graph-conv output widths; the last layer provides the sort key, so
    /// its width should be small (canonically 1).
    pub gc_dims: Vec<usize>,
    /// SortPooling size `k` (paper: 135).
    pub k: usize,
    /// First 1-D conv output channels (canonically 16).
    pub conv1_out: usize,
    /// Second 1-D conv kernel size (canonically 5).
    pub conv2_ksize: usize,
    /// Second 1-D conv output channels (canonically 32).
    pub conv2_out: usize,
    /// Hidden width of the dense read-out.
    pub dense_hidden: usize,
    /// Output classes.
    pub classes: usize,
}

impl Default for DgcnnConfig {
    fn default() -> Self {
        Self {
            in_dim: 32,
            gc_dims: vec![32, 32, 32, 1],
            k: 32,
            conv1_out: 16,
            conv2_ksize: 5,
            conv2_out: 32,
            dense_hidden: 128,
            classes: 2,
        }
    }
}

impl DgcnnConfig {
    /// Total concatenated graph-conv width `D`.
    pub fn concat_dim(&self) -> usize {
        self.gc_dims.iter().sum()
    }

    /// Width of [`Dgcnn::embed`]'s output.
    pub fn embed_dim(&self) -> usize {
        let pooled = self.k.div_ceil(2);
        (pooled - self.conv2_ksize + 1) * self.conv2_out
    }
}

/// The DGCNN model.
#[derive(Debug, Clone)]
pub struct Dgcnn {
    cfg: DgcnnConfig,
    gc: Vec<GcnLayer>,
    conv1: Conv1d,
    conv2: Conv1d,
    dense1: Linear,
    dense2: Linear,
}

impl Dgcnn {
    /// Register all parameters.
    pub fn new(params: &mut Params, name: &str, cfg: DgcnnConfig, rng: &mut StdRng) -> Self {
        assert!(!cfg.gc_dims.is_empty(), "need at least one graph conv layer");
        assert!(
            cfg.k.div_ceil(2) >= cfg.conv2_ksize,
            "k = {} too small for conv2 kernel {}",
            cfg.k,
            cfg.conv2_ksize
        );
        let mut gc = Vec::new();
        let mut prev = cfg.in_dim;
        for (i, &d) in cfg.gc_dims.iter().enumerate() {
            gc.push(GcnLayer::new(params, &format!("{name}.gc{i}"), prev, d, rng));
            prev = d;
        }
        let d = cfg.concat_dim();
        // First conv: kernel size = stride = D over the flattened k·D
        // column vector — one output position per pooled node.
        let conv1 = Conv1d::new(params, &format!("{name}.conv1"), 1, cfg.conv1_out, d, d, rng);
        let conv2 = Conv1d::new(
            params,
            &format!("{name}.conv2"),
            cfg.conv1_out,
            cfg.conv2_out,
            cfg.conv2_ksize,
            1,
            rng,
        );
        let dense1 = Linear::new(
            params,
            &format!("{name}.dense1"),
            cfg.embed_dim(),
            cfg.dense_hidden,
            true,
            rng,
        );
        let dense2 =
            Linear::new(params, &format!("{name}.dense2"), cfg.dense_hidden, cfg.classes, true, rng);
        Self { cfg, gc, conv1, conv2, dense1, dense2 }
    }

    /// The configuration.
    pub fn config(&self) -> &DgcnnConfig {
        &self.cfg
    }

    /// Run up to the input of the dense read-out: `1 × embed_dim`. This is
    /// the representation the multi-view model fuses.
    pub fn embed(&self, tape: &mut Tape<'_>, adj: &SparseMatrix, feats: Var) -> Var {
        let (n, in_dim) = tape.shape(feats);
        assert_eq!(in_dim, self.cfg.in_dim, "feature width mismatch");
        assert_eq!(adj.rows(), n, "adjacency size mismatch");

        // Graph conv stack; keep every layer's output for concatenation.
        let mut h = feats;
        let mut outs: Vec<Var> = Vec::with_capacity(self.gc.len());
        for layer in &self.gc {
            h = layer.forward(tape, adj, h);
            outs.push(h);
        }
        let mut concat = outs[0];
        for &o in &outs[1..] {
            concat = tape.concat_cols(concat, o);
        }

        // SortPooling: order by the final layer's last channel.
        let last = *outs.last().expect("non-empty stack");
        let (_, last_w) = tape.shape(last);
        let keys: Vec<f32> = tape
            .data(last)
            .chunks(last_w)
            .map(|r| *r.last().expect("non-empty row"))
            .collect();
        let order = sort_order(&keys, self.cfg.k);
        let pooled = tape.gather_rows_pad(concat, &order, self.cfg.k);

        // Flatten to a k·D column and convolve.
        let d = self.cfg.concat_dim();
        let flat = tape.reshape(pooled, self.cfg.k * d, 1);
        let c1 = self.conv1.forward(tape, flat);
        let a1 = tape.relu(c1);
        let p1 = tape.maxpool_rows(a1, 2);
        let c2 = self.conv2.forward(tape, p1);
        let a2 = tape.relu(c2);
        let (rows, cols) = tape.shape(a2);
        tape.reshape(a2, 1, rows * cols)
    }

    /// Full forward pass to class logits (`1 × classes`).
    pub fn logits(&self, tape: &mut Tape<'_>, adj: &SparseMatrix, feats: Var) -> Var {
        let e = self.embed(tape, adj, feats);
        self.head(tape, e)
    }

    /// The dense read-out applied to an embedding.
    pub fn head(&self, tape: &mut Tape<'_>, embed: Var) -> Var {
        let h = self.dense1.forward(tape, embed);
        let a = tape.relu(h);
        self.dense2.forward(tape, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcn::gcn_adjacency;
    use mvgnn_graph::Csr;
    use mvgnn_tensor::init;
    use mvgnn_tensor::optim::Adam;
    use mvgnn_tensor::tape::argmax_rows;

    fn small_cfg(in_dim: usize) -> DgcnnConfig {
        DgcnnConfig {
            in_dim,
            gc_dims: vec![8, 8, 1],
            k: 12,
            conv1_out: 4,
            conv2_ksize: 3,
            conv2_out: 8,
            dense_hidden: 16,
            classes: 2,
        }
    }

    #[test]
    fn embed_dim_formula() {
        let cfg = small_cfg(4);
        // k=12 -> pooled 6 -> conv2 out len 4 -> ×8 channels = 32.
        assert_eq!(cfg.embed_dim(), 32);
        assert_eq!(cfg.concat_dim(), 17);
    }

    #[test]
    fn forward_shapes_hold_for_any_graph_size() {
        let mut params = Params::new();
        let mut rng = init::rng(21);
        let model = Dgcnn::new(&mut params, "d", small_cfg(4), &mut rng);
        for n in [1usize, 3, 12, 40] {
            let edges: Vec<(u32, u32)> =
                (0..n.saturating_sub(1)).map(|i| (i as u32, i as u32 + 1)).collect();
            let adj = gcn_adjacency(&Csr::from_edges(n, &edges));
            let mut tape = Tape::new(&mut params);
            let x = tape.input(vec![0.1; n * 4], n, 4);
            let e = model.embed(&mut tape, &adj, x);
            assert_eq!(tape.shape(e), (1, 32), "n = {n}");
            let logits = model.head(&mut tape, e);
            assert_eq!(tape.shape(logits), (1, 2));
        }
    }

    #[test]
    fn learns_to_separate_cycle_from_chain() {
        // Graph classification smoke test: distinguish cycles from chains
        // using degree features — exercises the whole DGCNN pipeline.
        let mut params = Params::new();
        let mut rng = init::rng(33);
        let model = Dgcnn::new(&mut params, "d", small_cfg(2), &mut rng);
        let mut opt = Adam::new(0.01);

        let make = |n: usize, cycle: bool| {
            let mut edges: Vec<(u32, u32)> =
                (0..n - 1).map(|i| (i as u32, i as u32 + 1)).collect();
            if cycle {
                edges.push((n as u32 - 1, 0));
            }
            let csr = Csr::from_edges(n, &edges);
            let adj = gcn_adjacency(&csr);
            // Feature: in-degree + out-degree, constant 1.
            let feats: Vec<f32> = (0..n)
                .flat_map(|v| {
                    let deg = csr.degree(v as u32) as f32;
                    [deg, 1.0]
                })
                .collect();
            (adj, feats, n)
        };
        let data: Vec<(mvgnn_tensor::SparseMatrix, Vec<f32>, usize, usize)> = (4..10)
            .flat_map(|n| {
                let (a1, f1, _) = make(n, true);
                let (a2, f2, _) = make(n, false);
                [(a1, f1, n, 0usize), (a2, f2, n, 1usize)]
            })
            .collect();

        let mut acc = 0.0;
        for _epoch in 0..60 {
            params.zero_grads();
            let mut correct = 0;
            for (adj, feats, n, label) in &data {
                let mut tape = Tape::new(&mut params);
                let x = tape.input(feats.clone(), *n, 2);
                let logits = model.logits(&mut tape, adj, x);
                if argmax_rows(tape.data(logits), 1, 2)[0] == *label {
                    correct += 1;
                }
                let loss = tape.softmax_ce(logits, &[*label], 1.0);
                tape.backward(loss);
            }
            opt.step(&mut params);
            acc = correct as f32 / data.len() as f32;
            if acc == 1.0 {
                break;
            }
        }
        assert!(acc >= 0.9, "cycle-vs-chain accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "too small for conv2 kernel")]
    fn k_too_small_panics() {
        let mut params = Params::new();
        let mut rng = init::rng(1);
        let mut cfg = small_cfg(4);
        cfg.k = 4;
        let _ = Dgcnn::new(&mut params, "d", cfg, &mut rng);
    }
}
