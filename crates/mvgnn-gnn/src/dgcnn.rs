//! The Deep Graph CNN (Fig. 6): graph conv stack → SortPooling →
//! 1-D convolutions → dense read-out.
//!
//! Both MV-GNN views instantiate this architecture; the multi-view model
//! consumes [`Dgcnn::embed`] (the input of the final dense layer, as the
//! paper specifies) while the single-view baselines use
//! [`Dgcnn::logits`].

use crate::gcn::GcnLayer;
use crate::sortpool::sort_order_segments_into;
use mvgnn_nn::{Conv1d, Linear};
use mvgnn_tensor::tape::{Params, Tape, Var};
use mvgnn_tensor::SparseMatrix;
use rand::rngs::StdRng;

/// DGCNN hyperparameters.
#[derive(Debug, Clone)]
pub struct DgcnnConfig {
    /// Input node-feature width.
    pub in_dim: usize,
    /// Graph-conv output widths; the last layer provides the sort key, so
    /// its width should be small (canonically 1).
    pub gc_dims: Vec<usize>,
    /// SortPooling size `k` (paper: 135).
    pub k: usize,
    /// First 1-D conv output channels (canonically 16).
    pub conv1_out: usize,
    /// Second 1-D conv kernel size (canonically 5).
    pub conv2_ksize: usize,
    /// Second 1-D conv output channels (canonically 32).
    pub conv2_out: usize,
    /// Hidden width of the dense read-out.
    pub dense_hidden: usize,
    /// Output classes.
    pub classes: usize,
}

impl Default for DgcnnConfig {
    fn default() -> Self {
        Self {
            in_dim: 32,
            gc_dims: vec![32, 32, 32, 1],
            k: 32,
            conv1_out: 16,
            conv2_ksize: 5,
            conv2_out: 32,
            dense_hidden: 128,
            classes: 2,
        }
    }
}

impl DgcnnConfig {
    /// Total concatenated graph-conv width `D`.
    pub fn concat_dim(&self) -> usize {
        self.gc_dims.iter().sum()
    }

    /// Width of [`Dgcnn::embed`]'s output.
    pub fn embed_dim(&self) -> usize {
        let pooled = self.k.div_ceil(2);
        (pooled - self.conv2_ksize + 1) * self.conv2_out
    }
}

/// The DGCNN model.
#[derive(Debug, Clone)]
pub struct Dgcnn {
    cfg: DgcnnConfig,
    gc: Vec<GcnLayer>,
    conv1: Conv1d,
    conv2: Conv1d,
    dense1: Linear,
    dense2: Linear,
}

impl Dgcnn {
    /// Register all parameters.
    pub fn new(params: &mut Params, name: &str, cfg: DgcnnConfig, rng: &mut StdRng) -> Self {
        assert!(!cfg.gc_dims.is_empty(), "need at least one graph conv layer");
        assert!(
            cfg.k.div_ceil(2) >= cfg.conv2_ksize,
            "k = {} too small for conv2 kernel {}",
            cfg.k,
            cfg.conv2_ksize
        );
        let mut gc = Vec::new();
        let mut prev = cfg.in_dim;
        for (i, &d) in cfg.gc_dims.iter().enumerate() {
            gc.push(GcnLayer::new(params, &format!("{name}.gc{i}"), prev, d, rng));
            prev = d;
        }
        let d = cfg.concat_dim();
        // First conv: kernel size = stride = D over the flattened k·D
        // column vector — one output position per pooled node.
        let conv1 = Conv1d::new(params, &format!("{name}.conv1"), 1, cfg.conv1_out, d, d, rng);
        let conv2 = Conv1d::new(
            params,
            &format!("{name}.conv2"),
            cfg.conv1_out,
            cfg.conv2_out,
            cfg.conv2_ksize,
            1,
            rng,
        );
        let dense1 = Linear::new(
            params,
            &format!("{name}.dense1"),
            cfg.embed_dim(),
            cfg.dense_hidden,
            true,
            rng,
        );
        let dense2 =
            Linear::new(params, &format!("{name}.dense2"), cfg.dense_hidden, cfg.classes, true, rng);
        Self { cfg, gc, conv1, conv2, dense1, dense2 }
    }

    /// The configuration.
    pub fn config(&self) -> &DgcnnConfig {
        &self.cfg
    }

    /// Run up to the input of the dense read-out: `1 × embed_dim`. This is
    /// the representation the multi-view model fuses. A batch-of-one call
    /// into [`Self::embed_batch`].
    pub fn embed<'p>(&self, tape: &mut Tape<'p>, adj: &'p SparseMatrix, feats: Var) -> Var {
        let (n, _) = tape.shape(feats);
        self.embed_batch(tape, adj, feats, &[0, n])
    }

    /// Batched forward up to the dense read-out: `batch × embed_dim`.
    ///
    /// `feats` packs the graphs' node-feature rows (`offsets[batch]` rows
    /// total), `adj` is the matching block-diagonal propagation operator
    /// and `offsets` (length `batch + 1`) delimits each graph's rows.
    ///
    /// Row `g` is bit-identical to `embed` on graph `g` alone: the graph
    /// convs act per block of the block-diagonal operator, SortPooling
    /// ranks within each segment, conv1's windows (`ksize = stride = D`)
    /// tile the flattened `k·D` region of each graph exactly, and the
    /// pooling/conv2 stages use the segment-aware primitives so no window
    /// straddles two graphs even when `k` is odd.
    pub fn embed_batch<'p>(
        &self,
        tape: &mut Tape<'p>,
        adj: &'p SparseMatrix,
        feats: Var,
        offsets: &[usize],
    ) -> Var {
        let (n, in_dim) = tape.shape(feats);
        assert_eq!(in_dim, self.cfg.in_dim, "feature width mismatch");
        assert_eq!(adj.rows(), n, "adjacency size mismatch");
        assert!(offsets.len() >= 2, "offsets needs at least one segment");
        assert_eq!(offsets[offsets.len() - 1], n, "offsets must cover feats");
        let batch = offsets.len() - 1;

        // Graph conv stack; keep every layer's output for concatenation.
        // The adjacency is registered once — borrowed from its
        // caller-owned storage (the `GraphBatch` in batched inference),
        // not cloned — and shared by all layers.
        let adj = tape.sparse_ref(adj);
        let mut h = feats;
        let mut outs: Vec<Var> = Vec::with_capacity(self.gc.len());
        for layer in &self.gc {
            h = layer.forward_at(tape, adj, h);
            outs.push(h);
        }
        let mut concat = outs[0];
        for &o in &outs[1..] {
            concat = tape.concat_cols(concat, o);
        }

        // SortPooling: order by the final layer's last channel, ranking
        // within each graph's row segment. Keys and the per-segment sort
        // permutation live in pooled buffers so the steady state
        // allocates nothing here.
        let last = h; // final conv layer's output
        let (_, last_w) = tape.shape(last);
        let mut keys = tape.workspace_mut().acquire_f32(n);
        for (slot, r) in keys.iter_mut().zip(tape.data(last).chunks(last_w)) {
            *slot = r.last().copied().unwrap_or(0.0);
        }
        let k = self.cfg.k;
        let mut scratch = tape.workspace_mut().acquire_usize(0);
        let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(batch * k);
        sort_order_segments_into(&keys, offsets, k, &mut scratch, &mut pairs);
        tape.workspace_mut().release_f32(keys);
        tape.workspace_mut().release_usize(scratch);
        let pooled = tape.gather_rows_at(concat, &pairs, batch * k);

        // conv1 has ksize = stride = D over the flattened batch·k·D
        // column, so each of its windows is exactly one pooled row and
        // the whole stage is the matmul `pooled[batch·k × D] · W[D ×
        // out]` plus bias — same kernel, same per-element accumulation
        // order, without materialising the flattened copy. Windows can
        // never straddle graphs; the max-pool and conv2 stages still
        // need the segment-aware variants.
        let d = self.cfg.concat_dim();
        assert_eq!(self.conv1.geometry(), (1, d, d), "conv1 must tile the concat dim");
        let w1 = tape.param(self.conv1.w);
        let b1 = tape.param(self.conv1.b);
        let m1 = tape.matmul(pooled, w1);
        let c1 = tape.add_row(m1, b1);
        let a1 = tape.relu(c1);
        let p1 = tape.maxpool_rows_seg(a1, 2, k);
        let c2 = self.conv2.forward_seg(tape, p1, k.div_ceil(2));
        let a2 = tape.relu(c2);
        let (rows, cols) = tape.shape(a2);
        tape.reshape(a2, batch, rows * cols / batch)
    }

    /// Full forward pass to class logits (`1 × classes`).
    pub fn logits<'p>(&self, tape: &mut Tape<'p>, adj: &'p SparseMatrix, feats: Var) -> Var {
        let e = self.embed(tape, adj, feats);
        self.head(tape, e)
    }

    /// The dense read-out applied to an embedding.
    pub fn head(&self, tape: &mut Tape<'_>, embed: Var) -> Var {
        let h = self.dense1.forward(tape, embed);
        let a = tape.relu(h);
        self.dense2.forward(tape, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcn::gcn_adjacency;
    use mvgnn_graph::Csr;
    use mvgnn_tensor::init;
    use mvgnn_tensor::optim::Adam;
    use mvgnn_tensor::tape::argmax_rows;

    fn small_cfg(in_dim: usize) -> DgcnnConfig {
        DgcnnConfig {
            in_dim,
            gc_dims: vec![8, 8, 1],
            k: 12,
            conv1_out: 4,
            conv2_ksize: 3,
            conv2_out: 8,
            dense_hidden: 16,
            classes: 2,
        }
    }

    #[test]
    fn embed_dim_formula() {
        let cfg = small_cfg(4);
        // k=12 -> pooled 6 -> conv2 out len 4 -> ×8 channels = 32.
        assert_eq!(cfg.embed_dim(), 32);
        assert_eq!(cfg.concat_dim(), 17);
    }

    #[test]
    fn forward_shapes_hold_for_any_graph_size() {
        let mut params = Params::new();
        let mut rng = init::rng(21);
        let model = Dgcnn::new(&mut params, "d", small_cfg(4), &mut rng);
        for n in [1usize, 3, 12, 40] {
            let edges: Vec<(u32, u32)> =
                (0..n.saturating_sub(1)).map(|i| (i as u32, i as u32 + 1)).collect();
            let adj = gcn_adjacency(&Csr::from_edges(n, &edges));
            let mut tape = Tape::new(&params);
            let x = tape.input(vec![0.1; n * 4], n, 4);
            let e = model.embed(&mut tape, &adj, x);
            assert_eq!(tape.shape(e), (1, 32), "n = {n}");
            let logits = model.head(&mut tape, e);
            assert_eq!(tape.shape(logits), (1, 2));
        }
    }

    #[test]
    fn learns_to_separate_cycle_from_chain() {
        // Graph classification smoke test: distinguish cycles from chains
        // using degree features — exercises the whole DGCNN pipeline.
        let mut params = Params::new();
        let mut rng = init::rng(33);
        let model = Dgcnn::new(&mut params, "d", small_cfg(2), &mut rng);
        let mut opt = Adam::new(0.01);

        let make = |n: usize, cycle: bool| {
            let mut edges: Vec<(u32, u32)> =
                (0..n - 1).map(|i| (i as u32, i as u32 + 1)).collect();
            if cycle {
                edges.push((n as u32 - 1, 0));
            }
            let csr = Csr::from_edges(n, &edges);
            let adj = gcn_adjacency(&csr);
            // Feature: in-degree + out-degree, constant 1.
            let feats: Vec<f32> = (0..n)
                .flat_map(|v| {
                    let deg = csr.degree(v as u32) as f32;
                    [deg, 1.0]
                })
                .collect();
            (adj, feats, n)
        };
        let data: Vec<(mvgnn_tensor::SparseMatrix, Vec<f32>, usize, usize)> = (4..10)
            .flat_map(|n| {
                let (a1, f1, _) = make(n, true);
                let (a2, f2, _) = make(n, false);
                [(a1, f1, n, 0usize), (a2, f2, n, 1usize)]
            })
            .collect();

        let mut acc = 0.0;
        for _epoch in 0..60 {
            let mut master = mvgnn_tensor::GradStore::zeros_like(&params);
            let mut correct = 0;
            for (adj, feats, n, label) in &data {
                let mut tape = Tape::new(&params);
                let x = tape.input(feats.clone(), *n, 2);
                let logits = model.logits(&mut tape, adj, x);
                if argmax_rows(tape.data(logits), 1, 2)[0] == *label {
                    correct += 1;
                }
                let loss = tape.softmax_ce(logits, &[*label], 1.0);
                tape.backward(loss);
                master.absorb(&tape.into_grads());
            }
            opt.step(&mut params, &master);
            acc = correct as f32 / data.len() as f32;
            if acc == 1.0 {
                break;
            }
        }
        assert!(acc >= 0.9, "cycle-vs-chain accuracy {acc}");
    }

    #[test]
    fn embed_batch_rows_bit_identical_to_single_passes() {
        let mut params = Params::new();
        let mut rng = init::rng(9);
        // Odd k so maxpool/conv2 segments would straddle graphs if the
        // batched path used the plain primitives.
        let mut cfg = small_cfg(3);
        cfg.k = 7;
        let model = Dgcnn::new(&mut params, "d", cfg, &mut rng);

        let graphs: Vec<(mvgnn_tensor::SparseMatrix, Vec<f32>, usize)> = [2usize, 9, 5, 13]
            .iter()
            .enumerate()
            .map(|(gi, &n)| {
                let edges: Vec<(u32, u32)> =
                    (0..n - 1).map(|i| (i as u32, (i as u32 + 1) % n as u32)).collect();
                let adj = gcn_adjacency(&Csr::from_edges(n, &edges));
                // Constant feature block per graph: forces key ties inside
                // each graph, exercising the tie-break path.
                let feats = vec![0.1 * (gi as f32 + 1.0); n * 3];
                (adj, feats, n)
            })
            .collect();

        // Singles.
        let mut singles: Vec<Vec<f32>> = Vec::new();
        for (adj, feats, n) in &graphs {
            let mut tape = Tape::new(&params);
            let x = tape.input(feats.clone(), *n, 3);
            let e = model.embed(&mut tape, adj, x);
            singles.push(tape.data(e).to_vec());
        }

        // One batch.
        let adjs: Vec<&mvgnn_tensor::SparseMatrix> = graphs.iter().map(|(a, _, _)| a).collect();
        let bd = mvgnn_tensor::SparseMatrix::block_diag(&adjs);
        let mut feats = Vec::new();
        let mut offsets = vec![0usize];
        for (_, f, n) in &graphs {
            feats.extend_from_slice(f);
            offsets.push(offsets[offsets.len() - 1] + n);
        }
        let total = offsets[offsets.len() - 1];
        let mut tape = Tape::new(&params);
        let x = tape.input(feats, total, 3);
        let e = model.embed_batch(&mut tape, &bd, x, &offsets);
        let (rows, cols) = tape.shape(e);
        assert_eq!(rows, graphs.len());
        let batched = tape.data(e);
        for (g, single) in singles.iter().enumerate() {
            assert_eq!(cols, single.len());
            for (j, (&b, &s)) in batched[g * cols..(g + 1) * cols].iter().zip(single).enumerate() {
                assert_eq!(b.to_bits(), s.to_bits(), "graph {g} dim {j}");
            }
        }
    }

    #[test]
    fn embed_batch_gradients_match_summed_single_gradients() {
        // sum_all over the batch embedding must accumulate the same
        // parameter gradients as summing each graph's embedding alone.
        let build = |batched: bool| -> Vec<Vec<f32>> {
            let mut params = Params::new();
            let mut rng = init::rng(17);
            let model = Dgcnn::new(&mut params, "d", small_cfg(2), &mut rng);
            let mk = |n: usize| {
                let edges: Vec<(u32, u32)> =
                    (0..n - 1).map(|i| (i as u32, i as u32 + 1)).collect();
                gcn_adjacency(&Csr::from_edges(n, &edges))
            };
            let (na, nb) = (6usize, 4usize);
            let (aa, ab) = (mk(na), mk(nb));
            let fa: Vec<f32> = (0..na * 2).map(|i| (i as f32 * 0.07).sin()).collect();
            let fb: Vec<f32> = (0..nb * 2).map(|i| (i as f32 * 0.11).cos()).collect();
            let master = if batched {
                let bd = mvgnn_tensor::SparseMatrix::block_diag(&[&aa, &ab]);
                let packed: Vec<f32> = fa.iter().chain(&fb).copied().collect();
                let mut tape = Tape::new(&params);
                let x = tape.input(packed, na + nb, 2);
                let e = model.embed_batch(&mut tape, &bd, x, &[0, na, na + nb]);
                let loss = tape.sum_all(e);
                tape.backward(loss);
                tape.into_grads()
            } else {
                let mut acc = mvgnn_tensor::GradStore::zeros_like(&params);
                for (adj, f, n) in [(&aa, &fa, na), (&ab, &fb, nb)] {
                    let mut tape = Tape::new(&params);
                    let x = tape.input(f.clone(), n, 2);
                    let e = model.embed(&mut tape, adj, x);
                    let loss = tape.sum_all(e);
                    tape.backward(loss);
                    acc.absorb(&tape.into_grads());
                }
                acc
            };
            (0..params.len())
                .map(|i| master.get(mvgnn_tensor::tape::ParamId(i)).to_vec())
                .collect()
        };
        let gb = build(true);
        let gs = build(false);
        assert_eq!(gb.len(), gs.len());
        for (b, s) in gb.iter().zip(&gs) {
            for (x, y) in b.iter().zip(s) {
                assert!((x - y).abs() <= 1e-5, "grad mismatch {x} vs {y}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "too small for conv2 kernel")]
    fn k_too_small_panics() {
        let mut params = Params::new();
        let mut rng = init::rng(1);
        let mut cfg = small_cfg(4);
        cfg.k = 4;
        let _ = Dgcnn::new(&mut params, "d", cfg, &mut rng);
    }
}
