//! SortPooling row ordering (Zhang et al., AAAI'18).
//!
//! Nodes are ranked by their final graph-convolution channel — a
//! continuous Weisfeiler-Lehman colour — so graphs of arbitrary size map
//! to a fixed k-row tensor. Ties break by node index for determinism.

/// Compute the SortPooling row order: indices of the rows of `keys`
/// sorted descending, truncated to `k`. `keys` is one value per node (the
/// last channel of the final GCN layer). NaN keys (a damaged model) get a
/// deterministic total order rather than a panic — the non-finite logits
/// they produce are rejected downstream.
pub fn sort_order(keys: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..keys.len()).collect();
    idx.sort_by(|&a, &b| keys[b].total_cmp(&keys[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_descending() {
        assert_eq!(sort_order(&[0.1, 0.9, 0.5], 3), vec![1, 2, 0]);
    }

    #[test]
    fn truncates_to_k() {
        assert_eq!(sort_order(&[0.1, 0.9, 0.5, 0.7], 2), vec![1, 3]);
    }

    #[test]
    fn fewer_nodes_than_k_keeps_all() {
        assert_eq!(sort_order(&[0.3, 0.2], 5), vec![0, 1]);
    }

    #[test]
    fn ties_break_by_index() {
        assert_eq!(sort_order(&[0.5, 0.5, 0.5], 3), vec![0, 1, 2]);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(sort_order(&[], 4).is_empty());
    }

    #[test]
    fn nan_keys_do_not_panic_and_stay_deterministic() {
        let keys = [0.5, f32::NAN, 0.7, f32::NAN];
        assert_eq!(sort_order(&keys, 4), sort_order(&keys, 4));
        assert_eq!(sort_order(&keys, 4).len(), 4);
    }
}
