//! SortPooling row ordering (Zhang et al., AAAI'18).
//!
//! Nodes are ranked by their final graph-convolution channel — a
//! continuous Weisfeiler-Lehman colour — so graphs of arbitrary size map
//! to a fixed k-row tensor. Ties break by node index for determinism.

/// Compute the SortPooling row order: indices of the rows of `keys`
/// sorted descending, truncated to `k`. `keys` is one value per node (the
/// last channel of the final GCN layer). NaN keys (a damaged model) get a
/// deterministic total order rather than a panic — the non-finite logits
/// they produce are rejected downstream.
pub fn sort_order(keys: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..keys.len()).collect();
    idx.sort_by(|&a, &b| keys[b].total_cmp(&keys[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Batched SortPooling orders over a packed key vector. `offsets`
/// (length `batch + 1`) delimits each graph's rows; within a segment the
/// ranking is exactly [`sort_order`] on that segment's keys (ties break by
/// *local* node index, so a graph's order is independent of where it sits
/// in the batch). Returns `(dst, src)` row pairs addressing a `batch · k`
/// row output: graph `g`'s rank-`r` node lands on row `g·k + r`; rows of
/// graphs with fewer than `k` nodes are simply absent (zero padding).
pub fn sort_order_segments(keys: &[f32], offsets: &[usize], k: usize) -> Vec<(usize, usize)> {
    let batch = offsets.len().saturating_sub(1);
    let mut pairs = Vec::with_capacity(batch * k);
    let mut scratch = Vec::new();
    sort_order_segments_into(keys, offsets, k, &mut scratch, &mut pairs);
    pairs
}

/// [`sort_order_segments`] writing into caller-provided buffers — the
/// allocation-free flavour for pooled hot paths. `scratch` holds the
/// per-segment index permutation (cleared and reused per segment);
/// `pairs` is cleared and filled with the same `(dst, src)` pairs, in
/// the same order, as [`sort_order_segments`] returns.
pub fn sort_order_segments_into(
    keys: &[f32],
    offsets: &[usize],
    k: usize,
    scratch: &mut Vec<usize>,
    pairs: &mut Vec<(usize, usize)>,
) {
    assert!(offsets.len() >= 2, "offsets needs at least one segment");
    assert_eq!(offsets[offsets.len() - 1], keys.len(), "offsets must cover keys");
    let batch = offsets.len() - 1;
    pairs.clear();
    for g in 0..batch {
        let (lo, hi) = (offsets[g], offsets[g + 1]);
        let seg = &keys[lo..hi];
        scratch.clear();
        scratch.extend(0..seg.len());
        // Unstable sort allocates nothing; the index tie-break makes the
        // comparator injective, so the order is identical to a stable
        // sort anyway.
        scratch.sort_unstable_by(|&a, &b| seg[b].total_cmp(&seg[a]).then(a.cmp(&b)));
        for (rank, &local) in scratch.iter().take(k).enumerate() {
            pairs.push((g * k + rank, lo + local));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_descending() {
        assert_eq!(sort_order(&[0.1, 0.9, 0.5], 3), vec![1, 2, 0]);
    }

    #[test]
    fn truncates_to_k() {
        assert_eq!(sort_order(&[0.1, 0.9, 0.5, 0.7], 2), vec![1, 3]);
    }

    #[test]
    fn fewer_nodes_than_k_keeps_all() {
        assert_eq!(sort_order(&[0.3, 0.2], 5), vec![0, 1]);
    }

    #[test]
    fn ties_break_by_index() {
        assert_eq!(sort_order(&[0.5, 0.5, 0.5], 3), vec![0, 1, 2]);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(sort_order(&[], 4).is_empty());
    }

    #[test]
    fn nan_keys_do_not_panic_and_stay_deterministic() {
        let keys = [0.5, f32::NAN, 0.7, f32::NAN];
        assert_eq!(sort_order(&keys, 4), sort_order(&keys, 4));
        assert_eq!(sort_order(&keys, 4).len(), 4);
    }

    #[test]
    fn into_variant_matches_and_reuses_buffers() {
        let keys = [0.1, 0.9, 0.5, 0.7, 0.2];
        let offsets = [0usize, 3, 5];
        let mut scratch = Vec::new();
        let mut pairs = Vec::new();
        sort_order_segments_into(&keys, &offsets, 2, &mut scratch, &mut pairs);
        assert_eq!(pairs, sort_order_segments(&keys, &offsets, 2));
        // Reused buffers are cleared per call; stale contents never leak.
        sort_order_segments_into(&[0.3, 0.1], &[0, 2], 1, &mut scratch, &mut pairs);
        assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn segments_match_per_graph_sort_order() {
        let keys = [0.1, 0.9, 0.5, /* | */ 0.7, 0.2];
        let offsets = [0usize, 3, 5];
        let pairs = sort_order_segments(&keys, &offsets, 2);
        // graph 0: sort_order([0.1,0.9,0.5],2) = [1,2] -> dst 0,1
        // graph 1: sort_order([0.7,0.2],2) = [0,1] -> dst 2,3 src 3,4
        assert_eq!(pairs, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn short_segments_leave_padding_rows_unassigned() {
        let keys = [0.4, /* | */ 0.8, 0.6, 0.1];
        let offsets = [0usize, 1, 4];
        let pairs = sort_order_segments(&keys, &offsets, 3);
        // graph 0 has 1 node -> only dst row 0; rows 1,2 stay zero-padded.
        assert_eq!(pairs, vec![(0, 0), (3, 1), (4, 2), (5, 3)]);
    }

    #[test]
    fn ties_break_by_local_index_regardless_of_position() {
        // The same all-tied graph placed first or second must produce the
        // same local ranking — batch position cannot leak into the order.
        let solo = sort_order(&[0.5, 0.5, 0.5], 3);
        let pairs = sort_order_segments(&[1.0, 0.5, 0.5, 0.5], &[0, 1, 4], 3);
        let locals: Vec<usize> =
            pairs.iter().filter(|(d, _)| *d >= 3).map(|(_, s)| s - 1).collect();
        assert_eq!(locals, solo);
    }
}
