//! Graph convolution layers (Kipf & Welling) over the autograd tape.

use mvgnn_graph::Csr;
use mvgnn_nn::Linear;
use mvgnn_tensor::tape::{Params, SparseId, Tape, Var};
use mvgnn_tensor::SparseMatrix;
use rand::rngs::StdRng;

/// Build the symmetric-normalised propagation operator
/// `Â = D̃^{-1/2}(A + I)D̃^{-1/2}` from a directed CSR adjacency. The
/// operator treats edges as undirected (A is symmetrised first), matching
/// the reference GCN formulation.
pub fn gcn_adjacency(csr: &Csr) -> SparseMatrix {
    let n = csr.node_count();
    // Symmetrise.
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(csr.edge_count() * 2);
    for v in 0..n as u32 {
        for &t in csr.neighbors(v) {
            if t != v {
                edges.push((v, t));
                edges.push((t, v));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    let sym = Csr::from_edges(n, &edges);
    let triplets = sym.gcn_normalized();
    SparseMatrix::from_triplets(n, n, &triplets)
}

/// One graph convolution: `H' = act(Â · H · W + b)`.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    lin: Linear,
}

impl GcnLayer {
    /// Register parameters.
    pub fn new(params: &mut Params, name: &str, in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Self { lin: Linear::new(params, name, in_dim, out_dim, true, rng) }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.lin.out_dim()
    }

    /// Record `tanh(Â·H·W + b)` on the tape. The adjacency is borrowed
    /// (clone-free) and must outlive the tape.
    pub fn forward<'p>(&self, tape: &mut Tape<'p>, adj: &'p SparseMatrix, h: Var) -> Var {
        let adj = tape.sparse_ref(adj);
        self.forward_at(tape, adj, h)
    }

    /// [`Self::forward`] against an operator already registered on the
    /// tape, so a layer stack shares one stored copy of the adjacency.
    pub fn forward_at(&self, tape: &mut Tape<'_>, adj: SparseId, h: Var) -> Var {
        let agg = tape.spmm_at(adj, h);
        let lin = self.lin.forward(tape, agg);
        tape.tanh(lin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_tensor::init;

    #[test]
    fn adjacency_is_symmetric_and_normalised() {
        // Directed chain 0 -> 1 -> 2 becomes symmetric with self-loops.
        let csr = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let adj = gcn_adjacency(&csr);
        assert_eq!(adj.rows(), 3);
        // Entries: (0,0),(0,1),(1,0),(1,1),(1,2),(2,1),(2,2) = 7 non-zeros.
        assert_eq!(adj.nnz(), 7);
        // Symmetry: value(0,1) == value(1,0).
        let get = |r: usize, c: u32| adj.row(r).find(|&(cc, _)| cc == c).map(|(_, v)| v);
        assert_eq!(get(0, 1), get(1, 0));
        assert!(get(0, 0).unwrap() > 0.0);
    }

    #[test]
    fn forward_mixes_neighbours() {
        // On an edgeless graph features stay per-node (scaled by self-loop);
        // adding an edge mixes information between endpoints.
        let mut params = Params::new();
        let mut rng = init::rng(8);
        let layer = GcnLayer::new(&mut params, "g", 2, 3, &mut rng);
        let feats = vec![1.0, 0.0, 0.0, 1.0];

        let empty = gcn_adjacency(&Csr::from_edges(2, &[]));
        let joined = gcn_adjacency(&Csr::from_edges(2, &[(0, 1)]));
        let mut tape = Tape::new(&params);
        let x1 = tape.input(feats.clone(), 2, 2);
        let y_empty = layer.forward(&mut tape, &empty, x1);
        let x2 = tape.input(feats, 2, 2);
        let y_joined = layer.forward(&mut tape, &joined, x2);
        assert_eq!(tape.shape(y_empty), (2, 3));
        assert_ne!(tape.data(y_empty), tape.data(y_joined));
    }

    #[test]
    fn gradients_flow_through_layer() {
        let mut params = Params::new();
        let mut rng = init::rng(8);
        let layer = GcnLayer::new(&mut params, "g", 2, 2, &mut rng);
        let adj = gcn_adjacency(&Csr::from_edges(3, &[(0, 1), (1, 2)]));
        let mut tape = Tape::new(&params);
        let x = tape.input(vec![0.1; 6], 3, 2);
        let y = layer.forward(&mut tape, &adj, x);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        let grads = tape.into_grads();
        assert!(grads.get(layer.lin.w).iter().any(|&g| g != 0.0));
    }
}
