//! Single-layer LSTM. The NCC baseline (Ben-Nun et al.) stacks two of
//! these over inst2vec sequences; the view-importance probe (paper Fig. 8)
//! uses one over per-view outputs.

use crate::linear::Linear;
use mvgnn_tensor::tape::{Params, Tape, Var};
use rand::rngs::StdRng;

/// LSTM with per-gate input/recurrent affine maps.
#[derive(Debug, Clone)]
pub struct Lstm {
    // Gate order: input, forget, output, candidate.
    wx: [Linear; 4],
    wh: [Linear; 4],
    hidden: usize,
}

impl Lstm {
    /// Register parameters. `wx` maps `in_dim → hidden` (with bias), `wh`
    /// maps `hidden → hidden` (no bias; the wx bias covers both).
    pub fn new(params: &mut Params, name: &str, in_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let gate_names = ["i", "f", "o", "g"];
        let wx = gate_names
            .map(|g| Linear::new(params, &format!("{name}.wx{g}"), in_dim, hidden, true, rng));
        let wh = gate_names
            .map(|g| Linear::new(params, &format!("{name}.wh{g}"), hidden, hidden, false, rng));
        Self { wx, wh, hidden }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Run over a `T × in_dim` sequence; returns all hidden states
    /// (`T × hidden`) and the last hidden state (`1 × hidden`).
    pub fn forward_seq(&self, tape: &mut Tape<'_>, xs: Var) -> (Var, Var) {
        let (t_len, _) = tape.shape(xs);
        assert!(t_len > 0, "empty sequence");
        let mut h = tape.input(vec![0.0; self.hidden], 1, self.hidden);
        let mut c = tape.input(vec![0.0; self.hidden], 1, self.hidden);
        let mut outputs: Option<Var> = None;
        for t in 0..t_len {
            let x_t = tape.gather_rows_pad(xs, &[t], 1);
            let pre = |tape: &mut Tape<'_>, wx: &Linear, wh: &Linear, x: Var, h: Var| {
                let a = wx.forward(tape, x);
                let b = wh.forward(tape, h);
                tape.add(a, b)
            };
            let i_pre = pre(tape, &self.wx[0], &self.wh[0], x_t, h);
            let i = tape.sigmoid(i_pre);
            let f_pre = pre(tape, &self.wx[1], &self.wh[1], x_t, h);
            let f = tape.sigmoid(f_pre);
            let o_pre = pre(tape, &self.wx[2], &self.wh[2], x_t, h);
            let o = tape.sigmoid(o_pre);
            let g_pre = pre(tape, &self.wx[3], &self.wh[3], x_t, h);
            let g = tape.tanh(g_pre);
            let fc = tape.mul(f, c);
            let ig = tape.mul(i, g);
            c = tape.add(fc, ig);
            let ct = tape.tanh(c);
            h = tape.mul(o, ct);
            outputs = Some(match outputs {
                None => h,
                Some(prev) => tape.concat_rows(prev, h),
            });
        }
        // `t_len > 0` is asserted above, so the loop ran at least once
        // and `outputs` is always set; the fallback keeps the zero state.
        (outputs.unwrap_or(h), h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_tensor::init;
    use mvgnn_tensor::optim::Adam;

    #[test]
    fn shapes_and_state_progression() {
        let mut params = Params::new();
        let mut rng = init::rng(11);
        let lstm = Lstm::new(&mut params, "l", 3, 5, &mut rng);
        let mut tape = Tape::new(&params);
        let xs = tape.input((0..12).map(|i| (i as f32) * 0.1).collect(), 4, 3);
        let (all, last) = lstm.forward_seq(&mut tape, xs);
        assert_eq!(tape.shape(all), (4, 5));
        assert_eq!(tape.shape(last), (1, 5));
        // Last row of `all` equals `last`.
        assert_eq!(&tape.data(all)[15..20], tape.data(last));
        // Hidden states change over time.
        assert_ne!(&tape.data(all)[0..5], &tape.data(all)[15..20]);
    }

    #[test]
    fn learns_sequence_discrimination() {
        // Classify whether the sequence is increasing or decreasing —
        // requires actual temporal integration.
        let mut params = Params::new();
        let mut rng = init::rng(13);
        let lstm = Lstm::new(&mut params, "l", 1, 8, &mut rng);
        let head = Linear::new(&mut params, "head", 8, 2, true, &mut rng);
        let mut opt = Adam::new(0.02);
        let seqs: Vec<(Vec<f32>, usize)> = vec![
            (vec![0.1, 0.2, 0.3, 0.4], 0),
            (vec![0.0, 0.3, 0.5, 0.9], 0),
            (vec![0.2, 0.4, 0.6, 0.7], 0),
            (vec![0.9, 0.6, 0.4, 0.1], 1),
            (vec![0.8, 0.5, 0.3, 0.0], 1),
            (vec![0.7, 0.6, 0.2, 0.1], 1),
        ];
        let mut final_acc = 0.0;
        for _epoch in 0..150 {
            let mut master = mvgnn_tensor::GradStore::zeros_like(&params);
            let mut correct = 0;
            for (seq, label) in &seqs {
                let mut tape = Tape::new(&params);
                let xs = tape.input(seq.clone(), seq.len(), 1);
                let (_, last) = lstm.forward_seq(&mut tape, xs);
                let logits = head.forward(&mut tape, last);
                let pred = mvgnn_tensor::tape::argmax_rows(tape.data(logits), 1, 2)[0];
                if pred == *label {
                    correct += 1;
                }
                let loss = tape.softmax_ce(logits, &[*label], 1.0);
                tape.backward(loss);
                master.absorb(&tape.into_grads());
            }
            opt.step(&mut params, &master);
            final_acc = correct as f32 / seqs.len() as f32;
        }
        assert!(final_acc > 0.9, "accuracy {final_acc}");
    }
}
