//! Dense stack with a configurable activation.

use crate::linear::Linear;
use mvgnn_tensor::tape::{Params, Tape, Var};
use rand::rngs::StdRng;

/// Activation functions available to [`Mlp`] hidden layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Hyperbolic tangent (the paper's fusion layer).
    Tanh,
    /// Rectified linear unit (NCC dense layers).
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// No activation.
    Identity,
}

impl Activation {
    /// Apply on the tape.
    pub fn apply(self, tape: &mut Tape<'_>, x: Var) -> Var {
        match self {
            Activation::Tanh => tape.tanh(x),
            Activation::Relu => tape.relu(x),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Identity => x,
        }
    }
}

/// A stack of [`Linear`] layers; the activation is applied after every
/// layer except the last (logits come out raw).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Build from a dims chain, e.g. `[128, 64, 2]` = two layers.
    pub fn new(
        params: &mut Params,
        name: &str,
        dims: &[usize],
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(params, &format!("{name}.{i}"), w[0], w[1], true, rng))
            .collect();
        Self { layers, activation }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Record the stack on the tape.
    pub fn forward(&self, tape: &mut Tape<'_>, mut x: Var) -> Var {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(tape, x);
            if i != last {
                x = self.activation.apply(tape, x);
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_tensor::init;
    use mvgnn_tensor::optim::Adam;
    use mvgnn_tensor::tape::argmax_rows;

    #[test]
    fn shapes_through_stack() {
        let mut params = Params::new();
        let mut rng = init::rng(4);
        let mlp = Mlp::new(&mut params, "m", &[6, 10, 4, 2], Activation::Relu, &mut rng);
        assert_eq!(mlp.depth(), 3);
        let mut tape = Tape::new(&params);
        let x = tape.input(vec![0.5; 12], 2, 6);
        let y = mlp.forward(&mut tape, x);
        assert_eq!(tape.shape(y), (2, 2));
    }

    #[test]
    fn learns_xor() {
        // XOR demands a hidden layer — the canonical non-linear check.
        let data: Vec<(Vec<f32>, usize)> = vec![
            (vec![0.0, 0.0], 0),
            (vec![0.0, 1.0], 1),
            (vec![1.0, 0.0], 1),
            (vec![1.0, 1.0], 0),
        ];
        let mut params = Params::new();
        let mut rng = init::rng(99);
        let mlp = Mlp::new(&mut params, "m", &[2, 8, 2], Activation::Tanh, &mut rng);
        let mut opt = Adam::new(0.05);
        let mut acc = 0.0;
        for _ in 0..300 {
            let mut master = mvgnn_tensor::GradStore::zeros_like(&params);
            let mut correct = 0;
            for (x, y) in &data {
                let mut tape = Tape::new(&params);
                let xv = tape.input(x.clone(), 1, 2);
                let logits = mlp.forward(&mut tape, xv);
                if argmax_rows(tape.data(logits), 1, 2)[0] == *y {
                    correct += 1;
                }
                let loss = tape.softmax_ce(logits, &[*y], 1.0);
                tape.backward(loss);
                master.absorb(&tape.into_grads());
            }
            opt.step(&mut params, &master);
            acc = correct as f32 / data.len() as f32;
        }
        assert_eq!(acc, 1.0, "XOR accuracy {acc}");
    }

    #[test]
    fn activations_apply() {
        let params = Params::new();
        let mut tape = Tape::new(&params);
        let x = tape.input(vec![-1.0, 1.0], 1, 2);
        let r = Activation::Relu.apply(&mut tape, x);
        assert_eq!(tape.data(r), &[0.0, 1.0]);
        let i = Activation::Identity.apply(&mut tape, x);
        assert_eq!(i, x);
        let t = Activation::Tanh.apply(&mut tape, x);
        assert!(tape.data(t)[0] < 0.0 && tape.data(t)[1] > 0.0);
        let s = Activation::Sigmoid.apply(&mut tape, x);
        assert!(tape.data(s)[0] < 0.5 && tape.data(s)[1] > 0.5);
    }
}
