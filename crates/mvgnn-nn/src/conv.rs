//! 1-D convolution layer over row-sequences (DGCNN's read-out head).

use mvgnn_tensor::init;
use mvgnn_tensor::tape::{ParamId, Params, Tape, Var};
use rand::rngs::StdRng;

/// 1-D convolution: input `len × in_ch`, output
/// `((len − ksize)/stride + 1) × out_ch`.
#[derive(Debug, Clone)]
pub struct Conv1d {
    /// Kernel weights `ksize·in_ch × out_ch`.
    pub w: ParamId,
    /// Bias `1 × out_ch`.
    pub b: ParamId,
    in_ch: usize,
    out_ch: usize,
    ksize: usize,
    stride: usize,
}

impl Conv1d {
    /// Register parameters for a conv layer.
    pub fn new(
        params: &mut Params,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        ksize: usize,
        stride: usize,
        rng: &mut StdRng,
    ) -> Self {
        let rows = ksize * in_ch;
        let w = params.add(
            format!("{name}.w"),
            rows,
            out_ch,
            init::xavier_uniform(rows, out_ch, rng),
        );
        let b = params.add(format!("{name}.b"), 1, out_ch, init::zeros(out_ch));
        Self { w, b, in_ch, out_ch, ksize, stride }
    }

    /// Output length for an input of `len` rows.
    pub fn out_len(&self, len: usize) -> usize {
        (len - self.ksize) / self.stride + 1
    }

    /// Output channel count.
    pub fn out_ch(&self) -> usize {
        self.out_ch
    }

    /// `(in_ch, ksize, stride)` — the window geometry.
    pub fn geometry(&self) -> (usize, usize, usize) {
        (self.in_ch, self.ksize, self.stride)
    }

    /// Record the convolution on the tape.
    pub fn forward(&self, tape: &mut Tape<'_>, x: Var) -> Var {
        assert_eq!(tape.shape(x).1, self.in_ch, "conv1d input channels");
        let w = tape.param(self.w);
        let b = tape.param(self.b);
        tape.conv1d_rows(x, w, Some(b), self.ksize, self.stride)
    }

    /// Segment-aware convolution: `x` packs equally-sized row segments
    /// (one per graph of a batch) and windows never straddle a segment
    /// boundary. With a single segment this is exactly [`Self::forward`].
    pub fn forward_seg(&self, tape: &mut Tape<'_>, x: Var, seg_len: usize) -> Var {
        assert_eq!(tape.shape(x).1, self.in_ch, "conv1d input channels");
        let w = tape.param(self.w);
        let b = tape.param(self.b);
        tape.conv1d_rows_seg(x, w, Some(b), self.ksize, self.stride, seg_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_geometry() {
        let mut params = Params::new();
        let mut rng = init::rng(3);
        let conv = Conv1d::new(&mut params, "c", 4, 8, 5, 1, &mut rng);
        assert_eq!(conv.out_len(20), 16);
        assert_eq!(conv.out_ch(), 8);
        let mut tape = Tape::new(&params);
        let x = tape.input(vec![0.1; 20 * 4], 20, 4);
        let y = conv.forward(&mut tape, x);
        assert_eq!(tape.shape(y), (16, 8));
    }

    #[test]
    fn stride_equals_ksize_partitions_input() {
        // DGCNN's first conv: ksize = stride = feature dim acts per node.
        let mut params = Params::new();
        let mut rng = init::rng(5);
        let conv = Conv1d::new(&mut params, "c", 1, 2, 3, 3, &mut rng);
        let mut tape = Tape::new(&params);
        let x = tape.input(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 6, 1);
        let y = conv.forward(&mut tape, x);
        assert_eq!(tape.shape(y), (2, 2));
    }

    #[test]
    fn gradients_flow_to_kernel() {
        let mut params = Params::new();
        let mut rng = init::rng(7);
        let conv = Conv1d::new(&mut params, "c", 2, 3, 2, 1, &mut rng);
        let mut tape = Tape::new(&params);
        let x = tape.input(vec![0.5; 10], 5, 2);
        let y = conv.forward(&mut tape, x);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        let grads = tape.into_grads();
        assert!(grads.get(conv.w).iter().any(|&g| g != 0.0));
        assert!(grads.get(conv.b).iter().all(|&g| (g - 4.0).abs() < 1e-5));
    }
}
