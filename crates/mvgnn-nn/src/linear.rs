//! Affine layer `y = x·W (+ b)`.

use mvgnn_tensor::init;
use mvgnn_tensor::tape::{ParamId, Params, Tape, Var};
use rand::rngs::StdRng;

/// Dense affine layer.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight `in_dim × out_dim`.
    pub w: ParamId,
    /// Optional bias `1 × out_dim`.
    pub b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Register a layer's parameters (Xavier weights, zero bias).
    pub fn new(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut StdRng,
    ) -> Self {
        let w = params.add(
            format!("{name}.w"),
            in_dim,
            out_dim,
            init::xavier_uniform(in_dim, out_dim, rng),
        );
        let b = bias.then(|| params.add(format!("{name}.b"), 1, out_dim, init::zeros(out_dim)));
        Self { w, b, in_dim, out_dim }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Record `x·W (+ b)` on the tape. `x` is `rows × in_dim`.
    pub fn forward(&self, tape: &mut Tape<'_>, x: Var) -> Var {
        assert_eq!(tape.shape(x).1, self.in_dim, "linear input width");
        let w = tape.param(self.w);
        let h = tape.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = tape.param(b);
                tape.add_row(h, bv)
            }
            None => h,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_tensor::optim::Sgd;
    use mvgnn_tensor::GradStore;

    #[test]
    fn forward_shapes() {
        let mut params = Params::new();
        let mut rng = init::rng(1);
        let lin = Linear::new(&mut params, "l", 4, 3, true, &mut rng);
        let mut tape = Tape::new(&params);
        let x = tape.input(vec![0.0; 8], 2, 4);
        let y = lin.forward(&mut tape, x);
        assert_eq!(tape.shape(y), (2, 3));
        assert_eq!(lin.in_dim(), 4);
        assert_eq!(lin.out_dim(), 3);
    }

    #[test]
    fn bias_disabled_uses_one_param() {
        let mut params = Params::new();
        let mut rng = init::rng(1);
        let lin = Linear::new(&mut params, "l", 2, 2, false, &mut rng);
        assert!(lin.b.is_none());
        assert_eq!(params.len(), 1);
    }

    #[test]
    fn learns_identity_map() {
        let mut params = Params::new();
        let mut rng = init::rng(42);
        let lin = Linear::new(&mut params, "l", 2, 2, true, &mut rng);
        let mut opt = Sgd::new(0.1, 0.0);
        let data = [
            (vec![1.0f32, 0.0], vec![1.0f32, 0.0]),
            (vec![0.0, 1.0], vec![0.0, 1.0]),
            (vec![1.0, 1.0], vec![1.0, 1.0]),
        ];
        let mut last = f32::MAX;
        for _ in 0..200 {
            let mut master = GradStore::zeros_like(&params);
            let mut total = 0.0;
            for (x, y) in &data {
                let mut tape = Tape::new(&params);
                let xv = tape.input(x.clone(), 1, 2);
                let yv = tape.input(y.clone(), 1, 2);
                let out = lin.forward(&mut tape, xv);
                let d = tape.sub(out, yv);
                let sq = tape.mul(d, d);
                let loss = tape.sum_all(sq);
                total += tape.data(loss)[0];
                tape.backward(loss);
                master.absorb(&tape.into_grads());
            }
            opt.step(&mut params, &master);
            last = total;
        }
        assert!(last < 1e-3, "residual {last}");
    }
}
