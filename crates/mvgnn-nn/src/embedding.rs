//! Embedding table: id sequence → stacked rows of a learned matrix.
//!
//! Used twice in the reproduction: the inst2vec-style statement embedding
//! (node-feature view) and the anonymous-walk embedding table
//! (structural view).

use mvgnn_tensor::init;
use mvgnn_tensor::tape::{ParamId, Params, Tape, Var};
use rand::rngs::StdRng;

/// A `vocab × dim` lookup table.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The table parameter.
    pub table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Register a table initialised uniformly in ±0.5/dim.
    pub fn new(params: &mut Params, name: &str, vocab: usize, dim: usize, rng: &mut StdRng) -> Self {
        let bound = 0.5 / dim as f32;
        let table =
            params.add(format!("{name}.table"), vocab, dim, init::uniform(vocab * dim, bound, rng));
        Self { table, vocab, dim }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Look up a sequence of ids: output is `ids.len() × dim`.
    pub fn forward(&self, tape: &mut Tape<'_>, ids: &[usize]) -> Var {
        for &id in ids {
            assert!(id < self.vocab, "embedding id {id} out of vocab {}", self.vocab);
        }
        let table = tape.param(self.table);
        tape.gather_rows_pad(table, ids, ids.len())
    }

    /// Weighted mixture of all rows: `weights[rows × vocab] · table`,
    /// i.e. soft lookup by a distribution (used for anonymous-walk
    /// distributions, paper Eq. 3 → embedding).
    pub fn forward_soft(&self, tape: &mut Tape<'_>, weights: Var) -> Var {
        assert_eq!(tape.shape(weights).1, self.vocab, "weight width must equal vocab");
        let table = tape.param(self.table);
        tape.matmul(weights, table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_returns_rows() {
        let mut params = Params::new();
        let mut rng = init::rng(2);
        let emb = Embedding::new(&mut params, "e", 5, 3, &mut rng);
        let row2 = params.data(emb.table)[6..9].to_vec();
        let mut tape = Tape::new(&params);
        let out = emb.forward(&mut tape, &[2, 2, 4]);
        assert_eq!(tape.shape(out), (3, 3));
        assert_eq!(&tape.data(out)[..3], &row2[..]);
        assert_eq!(&tape.data(out)[3..6], &row2[..]);
    }

    #[test]
    fn soft_lookup_mixes_rows() {
        let mut params = Params::new();
        let mut rng = init::rng(2);
        let emb = Embedding::new(&mut params, "e", 2, 2, &mut rng);
        // Overwrite the table for a deterministic check.
        params.data_mut(emb.table).copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
        let mut tape = Tape::new(&params);
        let w = tape.input(vec![0.25, 0.75], 1, 2);
        let out = emb.forward_soft(&mut tape, w);
        assert_eq!(tape.data(out), &[0.25, 0.75]);
    }

    #[test]
    fn gradient_reaches_only_used_rows() {
        let mut params = Params::new();
        let mut rng = init::rng(2);
        let emb = Embedding::new(&mut params, "e", 4, 2, &mut rng);
        let mut tape = Tape::new(&params);
        let out = emb.forward(&mut tape, &[1]);
        let loss = tape.sum_all(out);
        tape.backward(loss);
        let grads = tape.into_grads();
        let g = grads.get(emb.table);
        assert_eq!(&g[0..2], &[0.0, 0.0]);
        assert_eq!(&g[2..4], &[1.0, 1.0]);
        assert_eq!(&g[4..8], &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn oob_id_panics() {
        let mut params = Params::new();
        let mut rng = init::rng(2);
        let emb = Embedding::new(&mut params, "e", 2, 2, &mut rng);
        let mut tape = Tape::new(&params);
        let _ = emb.forward(&mut tape, &[2]);
    }
}
