//! # mvgnn-nn — neural-network layers over the mvgnn-tensor tape
//!
//! Layers own [`mvgnn_tensor::ParamId`]s in a shared parameter store and
//! expose `forward(&self, tape, …)` methods that record onto the tape:
//!
//! - [`linear::Linear`] — affine map with optional bias
//! - [`conv::Conv1d`] — 1-D convolution over row-sequences
//! - [`embedding::Embedding`] — id → row lookup table
//! - [`lstm::Lstm`] — single-layer LSTM (the NCC baseline stacks two)
//! - [`mlp::Mlp`] — dense stack with configurable activation

pub mod conv;
pub mod embedding;
pub mod linear;
pub mod lstm;
pub mod mlp;

pub use conv::Conv1d;
pub use embedding::Embedding;
pub use linear::Linear;
pub use lstm::Lstm;
pub use mlp::{Activation, Mlp};
