//! Recursive-descent parser.

use crate::ast::{BinaryOp, Expr, Item, Program, Stmt};
use crate::lexer::{Spanned, Token};

/// Parse failure with a source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based source line (0 = end of input).
    pub line: u32,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    toks: &'a [Spanned],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { line: self.line(), msg: msg.into() }
    }

    fn next(&mut self) -> Result<&Token, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .ok_or(ParseError { line: 0, msg: "unexpected end of input".into() })?;
        self.pos += 1;
        Ok(&t.tok)
    }

    fn eat(&mut self, expected: &Token) -> Result<(), ParseError> {
        let line = self.line();
        let t = self.next()?;
        if t == expected {
            Ok(())
        } else {
            Err(ParseError { line, msg: format!("expected {expected:?}, found {t:?}") })
        }
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        let line = self.line();
        match self.next()? {
            Token::Ident(s) => Ok(s.clone()),
            other => Err(ParseError { line, msg: format!("expected identifier, found {other:?}") }),
        }
    }

    fn consume(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    // --- items ---------------------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut items = Vec::new();
        while let Some(tok) = self.peek() {
            match tok {
                Token::Array => items.push(self.array_decl()?),
                Token::Fn => items.push(self.function()?),
                other => return Err(self.err(format!("expected `array` or `fn`, found {other:?}"))),
            }
        }
        Ok(Program { items })
    }

    fn array_decl(&mut self) -> Result<Item, ParseError> {
        self.eat(&Token::Array)?;
        let name = self.eat_ident()?;
        self.eat(&Token::LBracket)?;
        let line = self.line();
        let len = match self.next()? {
            Token::Int(n) if *n > 0 => *n as usize,
            other => {
                return Err(ParseError { line, msg: format!("array length must be a positive integer, found {other:?}") })
            }
        };
        self.eat(&Token::RBracket)?;
        self.eat(&Token::Colon)?;
        let ty = self.eat_ident()?;
        let is_float = match ty.as_str() {
            "f64" => true,
            "i64" => false,
            other => return Err(self.err(format!("unknown element type `{other}`"))),
        };
        self.eat(&Token::Semi)?;
        Ok(Item::Array { name, len, is_float })
    }

    fn function(&mut self) -> Result<Item, ParseError> {
        self.eat(&Token::Fn)?;
        let name = self.eat_ident()?;
        self.eat(&Token::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                params.push(self.eat_ident()?);
                if !self.consume(&Token::Comma) {
                    break;
                }
            }
        }
        self.eat(&Token::RParen)?;
        let body = self.block()?;
        Ok(Item::Function { name, params, body })
    }

    // --- statements ----------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.eat(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Token::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.eat(&Token::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Token::Let) => {
                self.next()?;
                let name = self.eat_ident()?;
                self.eat(&Token::Assign)?;
                let e = self.expr()?;
                self.eat(&Token::Semi)?;
                Ok(Stmt::Let(name, e))
            }
            Some(Token::For) => {
                self.next()?;
                let var = self.eat_ident()?;
                self.eat(&Token::In)?;
                let lo = self.expr()?;
                self.eat(&Token::DotDot)?;
                let hi = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::For { var, lo, hi, body })
            }
            Some(Token::While) => {
                self.next()?;
                self.eat(&Token::LParen)?;
                let cond = self.expr()?;
                self.eat(&Token::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body))
            }
            Some(Token::If) => {
                self.next()?;
                self.eat(&Token::LParen)?;
                let cond = self.expr()?;
                self.eat(&Token::RParen)?;
                let then = self.block()?;
                let els = if self.consume(&Token::Else) { self.block()? } else { Vec::new() };
                Ok(Stmt::If(cond, then, els))
            }
            Some(Token::Return) => {
                self.next()?;
                let val =
                    if self.peek() == Some(&Token::Semi) { None } else { Some(self.expr()?) };
                self.eat(&Token::Semi)?;
                Ok(Stmt::Return(val))
            }
            Some(Token::Ident(_)) => {
                // Could be assignment, store, or an expression statement.
                let save = self.pos;
                let name = self.eat_ident()?;
                match self.peek() {
                    Some(Token::Assign) => {
                        self.next()?;
                        let e = self.expr()?;
                        self.eat(&Token::Semi)?;
                        Ok(Stmt::Assign(name, e))
                    }
                    Some(Token::LBracket) => {
                        // Store or indexed read in an expression — look for
                        // `] =` to decide.
                        self.next()?;
                        let idx = self.expr()?;
                        self.eat(&Token::RBracket)?;
                        if self.consume(&Token::Assign) {
                            let val = self.expr()?;
                            self.eat(&Token::Semi)?;
                            Ok(Stmt::Store(name, idx, val))
                        } else {
                            // Re-parse as a full expression statement.
                            self.pos = save;
                            let e = self.expr()?;
                            self.eat(&Token::Semi)?;
                            Ok(Stmt::Expr(e))
                        }
                    }
                    _ => {
                        self.pos = save;
                        let e = self.expr()?;
                        self.eat(&Token::Semi)?;
                        Ok(Stmt::Expr(e))
                    }
                }
            }
            Some(_) => {
                // Any other expression statement (e.g. a literal or a
                // parenthesised expression evaluated for nothing).
                let e = self.expr()?;
                self.eat(&Token::Semi)?;
                Ok(Stmt::Expr(e))
            }
            None => Err(self.err("expected a statement")),
        }
    }

    // --- expressions (precedence climbing) ------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Some(Token::EqEq) => BinaryOp::Eq,
                Some(Token::NotEq) => BinaryOp::Ne,
                Some(Token::Lt) => BinaryOp::Lt,
                Some(Token::Le) => BinaryOp::Le,
                Some(Token::Gt) => BinaryOp::Gt,
                Some(Token::Ge) => BinaryOp::Ge,
                _ => break,
            };
            self.next()?;
            let rhs = self.additive()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.next()?;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Rem,
                _ => break,
            };
            self.next()?;
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.consume(&Token::Minus) {
            Ok(Expr::Neg(Box::new(self.unary()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.next()? {
            Token::Int(n) => Ok(Expr::Int(*n)),
            Token::Float(x) => Ok(Expr::Float(*x)),
            Token::LParen => {
                let e = self.expr()?;
                self.eat(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                let name = name.clone();
                match self.peek() {
                    Some(Token::LParen) => {
                        self.next()?;
                        let mut args = Vec::new();
                        if self.peek() != Some(&Token::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.consume(&Token::Comma) {
                                    break;
                                }
                            }
                        }
                        self.eat(&Token::RParen)?;
                        Ok(Expr::Call(name, args))
                    }
                    Some(Token::LBracket) => {
                        self.next()?;
                        let idx = self.expr()?;
                        self.eat(&Token::RBracket)?;
                        Ok(Expr::Index(name, Box::new(idx)))
                    }
                    _ => Ok(Expr::Var(name)),
                }
            }
            other => Err(ParseError { line, msg: format!("expected an expression, found {other:?}") }),
        }
    }
}

/// Parse a token stream.
pub fn parse(tokens: &[Spanned]) -> Result<Program, ParseError> {
    let mut p = Parser { toks: tokens, pos: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse_src(src: &str) -> Program {
        parse(&tokenize(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_array_and_function() {
        let p = parse_src("array a[8]: f64; fn main() { }");
        assert_eq!(p.items.len(), 2);
        assert!(matches!(&p.items[0], Item::Array { len: 8, is_float: true, .. }));
        assert!(matches!(&p.items[1], Item::Function { .. }));
    }

    #[test]
    fn parses_for_loop_with_stores() {
        let p = parse_src(
            "array a[8]: f64; fn main() { for i in 0..8 { a[i] = a[i] * 2.0; } }",
        );
        let Item::Function { body, .. } = &p.items[1] else { panic!() };
        let Stmt::For { var, body, .. } = &body[0] else { panic!("{body:?}") };
        assert_eq!(var, "i");
        assert!(matches!(&body[0], Stmt::Store(..)));
    }

    #[test]
    fn precedence_mul_over_add_over_cmp() {
        let p = parse_src("fn f() { let x = 1 + 2 * 3 < 10; }");
        let Item::Function { body, .. } = &p.items[0] else { panic!() };
        let Stmt::Let(_, e) = &body[0] else { panic!() };
        // (1 + (2*3)) < 10
        let Expr::Binary(BinaryOp::Lt, lhs, _) = e else { panic!("{e:?}") };
        let Expr::Binary(BinaryOp::Add, _, mul) = &**lhs else { panic!("{lhs:?}") };
        assert!(matches!(&**mul, Expr::Binary(BinaryOp::Mul, _, _)));
    }

    #[test]
    fn parses_if_else_while_return() {
        let p = parse_src(
            "fn f(n) { while (n > 0) { if (n % 2 == 0) { n = n / 2; } else { n = n - 1; } } return n; }",
        );
        let Item::Function { body, params, .. } = &p.items[0] else { panic!() };
        assert_eq!(params, &["n"]);
        assert!(matches!(&body[0], Stmt::While(..)));
        assert!(matches!(&body[1], Stmt::Return(Some(_))));
    }

    #[test]
    fn parses_calls_and_expression_statements() {
        let p = parse_src("fn g() { } fn f() { g(); let x = g(); }");
        let Item::Function { body, .. } = &p.items[1] else { panic!() };
        assert!(matches!(&body[0], Stmt::Expr(Expr::Call(..))));
        assert!(matches!(&body[1], Stmt::Let(_, Expr::Call(..))));
    }

    #[test]
    fn indexed_read_in_expression_statement() {
        // `a[i];` is an (admittedly useless) expression statement, not a
        // store — the parser must backtrack correctly.
        let p = parse_src("array a[4]: f64; fn f() { for i in 0..4 { a[i]; } }");
        let Item::Function { body, .. } = &p.items[1] else { panic!() };
        let Stmt::For { body, .. } = &body[0] else { panic!() };
        assert!(matches!(&body[0], Stmt::Expr(Expr::Index(..))));
    }

    #[test]
    fn error_reports_line() {
        let toks = tokenize("fn f() {\n  let = 3;\n}").unwrap();
        let e = parse(&toks).unwrap_err();
        assert_eq!(e.line, 2);
    }
}
