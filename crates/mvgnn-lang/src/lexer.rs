//! Tokeniser for the mini language.

/// A lexical token with its source line (1-based).
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword payload.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal (contains `.` or exponent).
    Float(f64),
    /// `fn`
    Fn,
    /// `array`
    Array,
    /// `let`
    Let,
    /// `for`
    For,
    /// `in`
    In,
    /// `while`
    While,
    /// `if`
    If,
    /// `else`
    Else,
    /// `return`
    Return,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `..`
    DotDot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A token tagged with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// 1-based source line.
    pub line: u32,
}

/// Tokenisation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenise source text. `//` comments run to end of line.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    out.push(Spanned { tok: Token::Slash, line });
                }
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                let mut is_float = false;
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        text.push(d);
                        chars.next();
                    } else if d == '.' {
                        // Look ahead: `..` is a range, not a float dot.
                        let mut clone = chars.clone();
                        clone.next();
                        if clone.peek() == Some(&'.') {
                            break;
                        }
                        if is_float {
                            break;
                        }
                        is_float = true;
                        text.push('.');
                        chars.next();
                    } else {
                        break;
                    }
                }
                let tok = if is_float {
                    Token::Float(text.parse().map_err(|_| LexError {
                        line,
                        msg: format!("bad float literal `{text}`"),
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| LexError {
                        line,
                        msg: format!("bad integer literal `{text}`"),
                    })?)
                };
                out.push(Spanned { tok, line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        text.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let tok = match text.as_str() {
                    "fn" => Token::Fn,
                    "array" => Token::Array,
                    "let" => Token::Let,
                    "for" => Token::For,
                    "in" => Token::In,
                    "while" => Token::While,
                    "if" => Token::If,
                    "else" => Token::Else,
                    "return" => Token::Return,
                    _ => Token::Ident(text),
                };
                out.push(Spanned { tok, line });
            }
            _ => {
                chars.next();
                let two = |chars: &mut std::iter::Peekable<std::str::Chars<'_>>, next: char| {
                    if chars.peek() == Some(&next) {
                        chars.next();
                        true
                    } else {
                        false
                    }
                };
                let tok = match c {
                    '(' => Token::LParen,
                    ')' => Token::RParen,
                    '{' => Token::LBrace,
                    '}' => Token::RBrace,
                    '[' => Token::LBracket,
                    ']' => Token::RBracket,
                    ';' => Token::Semi,
                    ':' => Token::Colon,
                    ',' => Token::Comma,
                    '+' => Token::Plus,
                    '-' => Token::Minus,
                    '*' => Token::Star,
                    '%' => Token::Percent,
                    '.' => {
                        if two(&mut chars, '.') {
                            Token::DotDot
                        } else {
                            return Err(LexError { line, msg: "stray `.`".into() });
                        }
                    }
                    '=' => {
                        if two(&mut chars, '=') {
                            Token::EqEq
                        } else {
                            Token::Assign
                        }
                    }
                    '!' => {
                        if two(&mut chars, '=') {
                            Token::NotEq
                        } else {
                            return Err(LexError { line, msg: "stray `!`".into() });
                        }
                    }
                    '<' => {
                        if two(&mut chars, '=') {
                            Token::Le
                        } else {
                            Token::Lt
                        }
                    }
                    '>' => {
                        if two(&mut chars, '=') {
                            Token::Ge
                        } else {
                            Token::Gt
                        }
                    }
                    other => {
                        return Err(LexError { line, msg: format!("unexpected character `{other}`") })
                    }
                };
                out.push(Spanned { tok, line });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            toks("fn main for in x _y1"),
            vec![
                Token::Fn,
                Token::Ident("main".into()),
                Token::For,
                Token::In,
                Token::Ident("x".into()),
                Token::Ident("_y1".into()),
            ]
        );
    }

    #[test]
    fn numbers_and_ranges() {
        assert_eq!(
            toks("0..64 1.5 2"),
            vec![Token::Int(0), Token::DotDot, Token::Int(64), Token::Float(1.5), Token::Int(2)]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("= == != < <= > >= + - * / %"),
            vec![
                Token::Assign,
                Token::EqEq,
                Token::NotEq,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let spanned = tokenize("x // comment\ny").unwrap();
        assert_eq!(spanned.len(), 2);
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
    }

    #[test]
    fn errors_carry_lines() {
        let e = tokenize("x\n$").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains('$'));
    }

    #[test]
    fn float_then_range_disambiguates() {
        // `1.5` float; `1..5` range.
        assert_eq!(toks("1.5"), vec![Token::Float(1.5)]);
        assert_eq!(toks("1..5"), vec![Token::Int(1), Token::DotDot, Token::Int(5)]);
    }
}
