//! # mvgnn-lang — a miniature C-like frontend for the mvgnn IR
//!
//! The paper's pipeline begins at *source code*; this crate closes that
//! gap for the reproduction: a small imperative language with arrays,
//! counted `for` loops, `while`, `if/else`, functions and calls, lowered
//! onto [`mvgnn_ir`] through the structured builder so every loop gets
//! full [`mvgnn_ir::module::LoopInfo`] metadata for the profiler.
//!
//! ```
//! let src = r#"
//!     array a[64]: f64;
//!     array s[1]: f64;
//!     fn main() {
//!         for i in 0..64 {
//!             s[0] = s[0] + a[i];
//!         }
//!     }
//! "#;
//! let module = mvgnn_lang::compile(src).unwrap();
//! assert_eq!(module.loop_count(), 1);
//! ```
//!
//! Grammar sketch (see [`parser`] for the full rules):
//!
//! ```text
//! program := ("array" IDENT "[" INT "]" ":" type ";" | "fn" IDENT "(" params ")" block)*
//! stmt    := "for" IDENT "in" expr ".." expr block
//!          | "while" "(" expr ")" block
//!          | "if" "(" expr ")" block ("else" block)?
//!          | "let" IDENT "=" expr ";"
//!          | IDENT "=" expr ";"
//!          | IDENT "[" expr "]" "=" expr ";"
//!          | "return" expr? ";"
//!          | expr ";"
//! ```

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod printer;

pub use ast::{BinaryOp, Expr, Item, Program, Stmt};
pub use lexer::{tokenize, LexError, Token};
pub use lower::{lower, LowerError};
pub use parser::{parse, ParseError};
pub use printer::{print_expr, print_program};

/// Compile source text straight to a verified IR module.
pub fn compile(src: &str) -> Result<mvgnn_ir::Module, CompileError> {
    let tokens = tokenize(src).map_err(CompileError::Lex)?;
    let program = parse(&tokens).map_err(CompileError::Parse)?;
    let module = lower(&program).map_err(CompileError::Lower)?;
    mvgnn_ir::verify::verify_module(&module).map_err(CompileError::Verify)?;
    Ok(module)
}

/// Any front-end failure.
#[derive(Debug)]
pub enum CompileError {
    /// Tokenisation failed.
    Lex(LexError),
    /// Parsing failed.
    Parse(ParseError),
    /// Lowering failed (unknown names, arity mismatches, …).
    Lower(LowerError),
    /// The produced IR did not verify (an internal bug if it happens).
    Verify(mvgnn_ir::verify::VerifyError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lex(e) => write!(f, "{e}"),
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Lower(e) => write!(f, "{e}"),
            CompileError::Verify(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}
