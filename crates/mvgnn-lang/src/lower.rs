//! Lowering from the AST onto the `mvgnn-ir` structured builder.
//!
//! Scalar accumulators are lowered *in place* (`s = s + x;` becomes a
//! `Bin` whose destination is also an operand), preserving the register
//! self-update pattern the profiler's reduction recognition keys on.

use crate::ast::{BinaryOp, Expr, Item, Program, Stmt};
use mvgnn_ir::inst::{BinOp, UnOp};
use mvgnn_ir::module::{FuncId, Module};
use mvgnn_ir::types::{ArrayId, Ty, VReg};
use mvgnn_ir::FunctionBuilder;
use std::collections::HashMap;

/// Lowering failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError(pub String);

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lowering error: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

fn err<T>(msg: impl Into<String>) -> Result<T, LowerError> {
    Err(LowerError(msg.into()))
}

struct Ctx {
    arrays: HashMap<String, ArrayId>,
    funcs: HashMap<String, (FuncId, usize)>,
}

/// Lower a parsed program to an IR module.
pub fn lower(program: &Program) -> Result<Module, LowerError> {
    let mut module = Module::new("lang");
    let mut ctx = Ctx { arrays: HashMap::new(), funcs: HashMap::new() };

    // Pass 1: declare arrays and function signatures (enables recursion
    // and forward references).
    let mut next_fn = 0u32;
    for item in &program.items {
        match item {
            Item::Array { name, len, is_float } => {
                if ctx.arrays.contains_key(name) {
                    return err(format!("duplicate array `{name}`"));
                }
                let ty = if *is_float { Ty::F64 } else { Ty::I64 };
                let id = module.add_array(name.clone(), ty, *len);
                ctx.arrays.insert(name.clone(), id);
            }
            Item::Function { name, params, .. } => {
                if ctx.funcs.contains_key(name) {
                    return err(format!("duplicate function `{name}`"));
                }
                ctx.funcs.insert(name.clone(), (FuncId(next_fn), params.len()));
                next_fn += 1;
            }
        }
    }

    // Pass 2: lower bodies in declaration order (FuncIds line up).
    for item in &program.items {
        let Item::Function { name, params, body } = item else { continue };
        let mut b = FunctionBuilder::new(&mut module, name.clone(), params.len() as u32);
        let mut vars: HashMap<String, VReg> = HashMap::new();
        for (i, p) in params.iter().enumerate() {
            vars.insert(p.clone(), b.param(i as u32));
        }
        let terminated = lower_block(&mut b, &ctx, &mut vars, body)?;
        if !terminated {
            b.ret(None);
        }
        let got = b.finish();
        debug_assert_eq!(Some(&(got, params.len())), ctx.funcs.get(name));
    }
    Ok(module)
}

/// Lower a statement list; returns `true` if it ended in a `return`.
fn lower_block(
    b: &mut FunctionBuilder<'_>,
    ctx: &Ctx,
    vars: &mut HashMap<String, VReg>,
    stmts: &[Stmt],
) -> Result<bool, LowerError> {
    for (i, stmt) in stmts.iter().enumerate() {
        match stmt {
            Stmt::Let(name, e) => {
                let r = lower_expr(b, ctx, vars, e)?;
                // Pin `let` bindings to their own register so later
                // in-place updates don't alias the initialiser chain.
                let owned = b.copy(r);
                vars.insert(name.clone(), owned);
                b.next_line();
            }
            Stmt::Assign(name, e) => {
                let Some(&dst) = vars.get(name) else {
                    return err(format!("assignment to undeclared variable `{name}`"));
                };
                // In-place accumulator forms keep the self-update shape.
                if let Expr::Binary(op, lhs, rhs) = e {
                    if let Some(binop) = arith_op(*op) {
                        let self_on_left = matches!(&**lhs, Expr::Var(v) if v == name);
                        let self_on_right = matches!(&**rhs, Expr::Var(v) if v == name);
                        if self_on_left || self_on_right {
                            let lr = lower_expr(b, ctx, vars, lhs)?;
                            let rr = lower_expr(b, ctx, vars, rhs)?;
                            b.bin_to(dst, binop, lr, rr);
                            b.next_line();
                            continue;
                        }
                    }
                }
                let r = lower_expr(b, ctx, vars, e)?;
                b.copy_to(dst, r);
                b.next_line();
            }
            Stmt::Store(arr, idx, val) => {
                let Some(&a) = ctx.arrays.get(arr) else {
                    return err(format!("store to undeclared array `{arr}`"));
                };
                let i = lower_expr(b, ctx, vars, idx)?;
                let v = lower_expr(b, ctx, vars, val)?;
                b.store(a, i, v);
                b.next_line();
            }
            Stmt::For { var, lo, hi, body } => {
                let lo_r = lower_expr(b, ctx, vars, lo)?;
                let hi_r = lower_expr(b, ctx, vars, hi)?;
                let step = b.const_i64(1);
                let shadow = vars.get(var).copied();
                let mut inner_err = None;
                b.for_loop(lo_r, hi_r, step, |b, iv| {
                    vars.insert(var.clone(), iv);
                    if let Err(e) = lower_block(b, ctx, vars, body) {
                        inner_err = Some(e);
                    }
                });
                if let Some(e) = inner_err {
                    return Err(e);
                }
                match shadow {
                    Some(old) => vars.insert(var.clone(), old),
                    None => vars.remove(var),
                };
            }
            Stmt::While(cond, body) => {
                // Both closures need the variable map and the error slot;
                // route them through RefCells (the builder invokes the
                // closures sequentially, so borrows never overlap).
                let vars_cell = std::cell::RefCell::new(std::mem::take(vars));
                let err_cell: std::cell::RefCell<Option<LowerError>> =
                    std::cell::RefCell::new(None);
                b.while_loop(
                    |b| {
                        let v = vars_cell.borrow();
                        match lower_expr(b, ctx, &v, cond) {
                            Ok(r) => r,
                            Err(e) => {
                                *err_cell.borrow_mut() = Some(e);
                                drop(v);
                                b.const_i64(0)
                            }
                        }
                    },
                    |b| {
                        if err_cell.borrow().is_none() {
                            let mut v = vars_cell.borrow_mut();
                            if let Err(e) = lower_block(b, ctx, &mut v, body) {
                                *err_cell.borrow_mut() = Some(e);
                            }
                        }
                    },
                );
                *vars = vars_cell.into_inner();
                if let Some(e) = err_cell.into_inner() {
                    return Err(e);
                }
            }
            Stmt::If(cond, then, els) => {
                let c = lower_expr(b, ctx, vars, cond)?;
                let vars_cell = std::cell::RefCell::new(std::mem::take(vars));
                let err_cell: std::cell::RefCell<Option<LowerError>> =
                    std::cell::RefCell::new(None);
                b.if_else(
                    c,
                    |b| {
                        let mut v = vars_cell.borrow_mut();
                        if let Err(e) = lower_block(b, ctx, &mut v, then) {
                            *err_cell.borrow_mut() = Some(e);
                        }
                    },
                    |b| {
                        if err_cell.borrow().is_none() {
                            let mut v = vars_cell.borrow_mut();
                            if let Err(e) = lower_block(b, ctx, &mut v, els) {
                                *err_cell.borrow_mut() = Some(e);
                            }
                        }
                    },
                );
                *vars = vars_cell.into_inner();
                if let Some(e) = err_cell.into_inner() {
                    return Err(e);
                }
            }
            Stmt::Return(val) => {
                let r = match val {
                    Some(e) => Some(lower_expr(b, ctx, vars, e)?),
                    None => None,
                };
                b.ret(r);
                if i + 1 != stmts.len() {
                    return err("unreachable code after `return`");
                }
                return Ok(true);
            }
            Stmt::Expr(e) => {
                // Only calls make sense for effect; evaluate anything.
                if let Expr::Call(name, args) = e {
                    let (f, arity) = *ctx
                        .funcs
                        .get(name)
                        .ok_or_else(|| LowerError(format!("call to undeclared function `{name}`")))?;
                    if args.len() != arity {
                        return err(format!(
                            "call to `{name}` with {} args, expected {arity}",
                            args.len()
                        ));
                    }
                    let mut regs = Vec::with_capacity(args.len());
                    for a in args {
                        regs.push(lower_expr(b, ctx, vars, a)?);
                    }
                    b.call_void(f, &regs);
                } else {
                    let _ = lower_expr(b, ctx, vars, e)?;
                }
                b.next_line();
            }
        }
    }
    Ok(false)
}

fn arith_op(op: BinaryOp) -> Option<BinOp> {
    Some(match op {
        BinaryOp::Add => BinOp::Add,
        BinaryOp::Sub => BinOp::Sub,
        BinaryOp::Mul => BinOp::Mul,
        BinaryOp::Div => BinOp::Div,
        BinaryOp::Rem => BinOp::Rem,
        _ => return None,
    })
}

fn lower_expr(
    b: &mut FunctionBuilder<'_>,
    ctx: &Ctx,
    vars: &HashMap<String, VReg>,
    e: &Expr,
) -> Result<VReg, LowerError> {
    Ok(match e {
        Expr::Int(n) => b.const_i64(*n),
        Expr::Float(x) => b.const_f64(*x),
        Expr::Var(name) => *vars
            .get(name)
            .ok_or_else(|| LowerError(format!("use of undeclared variable `{name}`")))?,
        Expr::Index(arr, idx) => {
            let a = *ctx
                .arrays
                .get(arr)
                .ok_or_else(|| LowerError(format!("read of undeclared array `{arr}`")))?;
            let i = lower_expr(b, ctx, vars, idx)?;
            b.load(a, i)
        }
        Expr::Call(name, args) => {
            let (f, arity) = *ctx
                .funcs
                .get(name)
                .ok_or_else(|| LowerError(format!("call to undeclared function `{name}`")))?;
            if args.len() != arity {
                return err(format!("call to `{name}` with {} args, expected {arity}", args.len()));
            }
            let mut regs = Vec::with_capacity(args.len());
            for a in args {
                regs.push(lower_expr(b, ctx, vars, a)?);
            }
            b.call(f, &regs)
        }
        Expr::Neg(inner) => {
            let r = lower_expr(b, ctx, vars, inner)?;
            b.un(UnOp::Neg, r)
        }
        Expr::Binary(op, lhs, rhs) => {
            let (binop, swap) = match op {
                BinaryOp::Add => (BinOp::Add, false),
                BinaryOp::Sub => (BinOp::Sub, false),
                BinaryOp::Mul => (BinOp::Mul, false),
                BinaryOp::Div => (BinOp::Div, false),
                BinaryOp::Rem => (BinOp::Rem, false),
                BinaryOp::Eq => (BinOp::CmpEq, false),
                BinaryOp::Ne => (BinOp::CmpNe, false),
                BinaryOp::Lt => (BinOp::CmpLt, false),
                BinaryOp::Le => (BinOp::CmpLe, false),
                BinaryOp::Gt => (BinOp::CmpLt, true),
                BinaryOp::Ge => (BinOp::CmpLe, true),
            };
            let l = lower_expr(b, ctx, vars, lhs)?;
            let r = lower_expr(b, ctx, vars, rhs)?;
            if swap {
                b.bin(binop, r, l)
            } else {
                b.bin(binop, l, r)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use mvgnn_ir::interp::{Interpreter, NoTracer};
    use mvgnn_ir::types::Value;
    use mvgnn_profiler::{classify_loop, profile_module, LoopClass};

    #[test]
    fn compiles_and_runs_arithmetic() {
        let m = compile("fn main() { let x = 2 + 3 * 4; return x; }").unwrap();
        let f = m.func_by_name("main").unwrap();
        let (ret, _) = Interpreter::new(&m).run(f, &[], &mut NoTracer).unwrap();
        assert_eq!(ret, Some(Value::I64(14)));
    }

    #[test]
    fn for_loop_fills_array() {
        let m = compile(
            "array a[8]: i64; fn main() { for i in 0..8 { a[i] = i * 2; } return a[7]; }",
        )
        .unwrap();
        let f = m.func_by_name("main").unwrap();
        let (ret, _) = Interpreter::new(&m).run(f, &[], &mut NoTracer).unwrap();
        assert_eq!(ret, Some(Value::I64(14)));
    }

    #[test]
    fn scalar_accumulator_classifies_as_reduction() {
        let m = compile(
            "array a[16]: f64;
             fn main() {
                 let s = 0.0;
                 for i in 0..16 { s = s + a[i]; }
                 return s;
             }",
        )
        .unwrap();
        let f = m.func_by_name("main").unwrap();
        let res = profile_module(&m, f, &[]).unwrap();
        let l = mvgnn_ir::module::LoopId(0);
        assert_eq!(classify_loop(&m, f, l, &res.deps), LoopClass::Reduction);
    }

    #[test]
    fn in_place_stencil_classifies_as_serial() {
        let m = compile(
            "array a[18]: f64;
             fn main() {
                 for i in 1..17 { a[i] = a[i - 1] + a[i + 1]; }
             }",
        )
        .unwrap();
        let f = m.func_by_name("main").unwrap();
        let res = profile_module(&m, f, &[]).unwrap();
        let l = mvgnn_ir::module::LoopId(0);
        assert!(!classify_loop(&m, f, l, &res.deps).is_parallelizable());
    }

    #[test]
    fn out_of_place_map_classifies_as_doall() {
        let m = compile(
            "array a[16]: f64; array b[16]: f64;
             fn main() { for i in 0..16 { b[i] = a[i] * a[i]; } }",
        )
        .unwrap();
        let f = m.func_by_name("main").unwrap();
        let res = profile_module(&m, f, &[]).unwrap();
        assert_eq!(
            classify_loop(&m, f, mvgnn_ir::module::LoopId(0), &res.deps),
            LoopClass::DoAll
        );
    }

    #[test]
    fn recursion_via_forward_reference() {
        let m = compile(
            "fn fib(n) {
                 if (n < 2) { return n; }
                 return fib(n - 1) + fib(n - 2);
             }
             fn main() { return fib(10); }",
        )
        .unwrap();
        let f = m.func_by_name("main").unwrap();
        let (ret, _) = Interpreter::new(&m).run(f, &[], &mut NoTracer).unwrap();
        assert_eq!(ret, Some(Value::I64(55)));
    }

    #[test]
    fn while_and_comparison_directions() {
        let m = compile(
            "fn main() {
                 let n = 100;
                 let steps = 0;
                 while (n > 1) {
                     if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                     steps = steps + 1;
                 }
                 return steps;
             }",
        )
        .unwrap();
        let f = m.func_by_name("main").unwrap();
        let (ret, _) = Interpreter::new(&m).run(f, &[], &mut NoTracer).unwrap();
        assert_eq!(ret, Some(Value::I64(25))); // Collatz(100) = 25 steps
    }

    #[test]
    fn nested_loops_get_loop_metadata() {
        let m = compile(
            "array a[16]: f64;
             fn main() {
                 for i in 0..4 { for j in 0..4 { a[i * 4 + j] = 1.0; } }
             }",
        )
        .unwrap();
        assert_eq!(m.loop_count(), 2);
        let f = m.func_by_name("main").unwrap();
        let fun = &m.funcs[f.index()];
        assert_eq!(fun.loops[1].parent, Some(mvgnn_ir::module::LoopId(0)));
        assert_eq!(fun.loops[1].depth, 1);
    }

    #[test]
    fn errors_on_undeclared_names() {
        assert!(compile("fn main() { x = 3; }").is_err());
        assert!(compile("fn main() { let x = y; }").is_err());
        assert!(compile("fn main() { a[0] = 1; }").is_err());
        assert!(compile("fn main() { g(); }").is_err());
        assert!(compile("fn g(x) {} fn main() { g(); }").is_err()); // arity
    }

    #[test]
    fn errors_on_unreachable_code() {
        let e = compile("fn main() { return 1; let x = 2; }").unwrap_err();
        assert!(e.to_string().contains("unreachable"), "{e}");
    }

    #[test]
    fn loop_variable_shadowing_restores() {
        let m = compile(
            "array a[4]: i64;
             fn main() {
                 let i = 99;
                 for i in 0..4 { a[i] = i; }
                 return i;
             }",
        )
        .unwrap();
        let f = m.func_by_name("main").unwrap();
        let (ret, _) = Interpreter::new(&m).run(f, &[], &mut NoTracer).unwrap();
        assert_eq!(ret, Some(Value::I64(99)));
    }
}
