//! Abstract syntax tree of the mini language.

/// Binary operators, in source syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Variable reference.
    Var(String),
    /// Array element read `a[i]`.
    Index(String, Box<Expr>),
    /// Function call `f(a, b)`.
    Call(String, Vec<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x = e;` — introduce a variable.
    Let(String, Expr),
    /// `x = e;` — reassign.
    Assign(String, Expr),
    /// `a[i] = e;` — store.
    Store(String, Expr, Expr),
    /// `for i in lo..hi { .. }`
    For {
        /// Induction variable name.
        var: String,
        /// Lower bound (inclusive).
        lo: Expr,
        /// Upper bound (exclusive).
        hi: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `while (cond) { .. }`
    While(Expr, Vec<Stmt>),
    /// `if (cond) { .. } else { .. }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `return e?;`
    Return(Option<Expr>),
    /// Bare expression statement (calls for effect).
    Expr(Expr),
}

/// Top-level items.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `array name[len]: ty;`
    Array {
        /// Array name.
        name: String,
        /// Element count.
        len: usize,
        /// `true` = f64, `false` = i64.
        is_float: bool,
    },
    /// `fn name(params) { .. }`
    Function {
        /// Function name.
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Body.
        body: Vec<Stmt>,
    },
}

/// A whole program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// Names of all declared functions, in order.
    pub fn function_names(&self) -> Vec<&str> {
        self.items
            .iter()
            .filter_map(|i| match i {
                Item::Function { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_names_in_order() {
        let p = Program {
            items: vec![
                Item::Array { name: "a".into(), len: 4, is_float: true },
                Item::Function { name: "f".into(), params: vec![], body: vec![] },
                Item::Function { name: "g".into(), params: vec!["x".into()], body: vec![] },
            ],
        };
        assert_eq!(p.function_names(), vec!["f", "g"]);
    }
}
