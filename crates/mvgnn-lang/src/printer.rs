//! AST pretty-printer: renders a [`Program`] back to parseable source.
//!
//! `parse(print(ast)) == ast` is property-tested, which pins the grammar
//! and printer together.

use crate::ast::{BinaryOp, Expr, Item, Program, Stmt};
use std::fmt::Write as _;

fn op_str(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Add => "+",
        BinaryOp::Sub => "-",
        BinaryOp::Mul => "*",
        BinaryOp::Div => "/",
        BinaryOp::Rem => "%",
        BinaryOp::Eq => "==",
        BinaryOp::Ne => "!=",
        BinaryOp::Lt => "<",
        BinaryOp::Le => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::Ge => ">=",
    }
}

/// Render an expression (fully parenthesised — unambiguous and re-parseable).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Int(n) => n.to_string(),
        Expr::Float(x) => {
            let s = format!("{x}");
            if s.contains('.') || s.contains('e') {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::Var(v) => v.clone(),
        Expr::Index(a, i) => format!("{a}[{}]", print_expr(i)),
        Expr::Call(f, args) => {
            let a: Vec<String> = args.iter().map(print_expr).collect();
            format!("{f}({})", a.join(", "))
        }
        Expr::Neg(inner) => format!("(-{})", print_expr(inner)),
        Expr::Binary(op, l, r) => {
            format!("({} {} {})", print_expr(l), op_str(*op), print_expr(r))
        }
    }
}

fn print_block(out: &mut String, stmts: &[Stmt], indent: usize) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::Let(n, e) => {
                let _ = writeln!(out, "{pad}let {n} = {};", print_expr(e));
            }
            Stmt::Assign(n, e) => {
                let _ = writeln!(out, "{pad}{n} = {};", print_expr(e));
            }
            Stmt::Store(a, i, v) => {
                let _ = writeln!(out, "{pad}{a}[{}] = {};", print_expr(i), print_expr(v));
            }
            Stmt::For { var, lo, hi, body } => {
                let _ = writeln!(out, "{pad}for {var} in {}..{} {{", print_expr(lo), print_expr(hi));
                print_block(out, body, indent + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::While(c, body) => {
                let _ = writeln!(out, "{pad}while ({}) {{", print_expr(c));
                print_block(out, body, indent + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::If(c, then, els) => {
                let _ = writeln!(out, "{pad}if ({}) {{", print_expr(c));
                print_block(out, then, indent + 1);
                if els.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    print_block(out, els, indent + 1);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            Stmt::Return(Some(e)) => {
                let _ = writeln!(out, "{pad}return {};", print_expr(e));
            }
            Stmt::Return(None) => {
                let _ = writeln!(out, "{pad}return;");
            }
            Stmt::Expr(e) => {
                let _ = writeln!(out, "{pad}{};", print_expr(e));
            }
        }
    }
}

/// Render a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for item in &p.items {
        match item {
            Item::Array { name, len, is_float } => {
                let ty = if *is_float { "f64" } else { "i64" };
                let _ = writeln!(out, "array {name}[{len}]: {ty};");
            }
            Item::Function { name, params, body } => {
                let _ = writeln!(out, "fn {name}({}) {{", params.join(", "));
                print_block(&mut out, body, 1);
                let _ = writeln!(out, "}}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parser::parse;
    use proptest::prelude::*;

    fn roundtrip(p: &Program) -> Program {
        let src = print_program(p);
        parse(&tokenize(&src).unwrap_or_else(|e| panic!("{e}\n{src}")))
            .unwrap_or_else(|e| panic!("{e}\n{src}"))
    }

    #[test]
    fn prints_and_reparses_example() {
        let src = "array a[8]: f64;\nfn main() {\n    for i in 0..8 {\n        a[i] = (a[i] * 2.0);\n    }\n}\n";
        let ast = parse(&tokenize(src).unwrap()).unwrap();
        assert_eq!(roundtrip(&ast), ast);
        assert_eq!(print_program(&ast), src);
    }

    // --- proptest grammar -------------------------------------------------

    fn ident() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9]{0,5}".prop_filter("not a keyword", |s| {
            !matches!(
                s.as_str(),
                "fn" | "array" | "let" | "for" | "in" | "while" | "if" | "else" | "return"
            )
        })
    }

    fn expr_strategy() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (0i64..1000).prop_map(Expr::Int),
            (0u32..100).prop_map(|n| Expr::Float(n as f64 + 0.5)),
            ident().prop_map(Expr::Var),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                (ident(), inner.clone()).prop_map(|(a, i)| Expr::Index(a, Box::new(i))),
                (inner.clone()).prop_map(|e| Expr::Neg(Box::new(e))),
                (
                    prop_oneof![
                        Just(BinaryOp::Add),
                        Just(BinaryOp::Mul),
                        Just(BinaryOp::Lt),
                        Just(BinaryOp::Rem),
                        Just(BinaryOp::Ge),
                    ],
                    inner.clone(),
                    inner.clone()
                )
                    .prop_map(|(op, l, r)| Expr::Binary(op, Box::new(l), Box::new(r))),
                (ident(), proptest::collection::vec(inner, 0..3))
                    .prop_map(|(f, args)| Expr::Call(f, args)),
            ]
        })
    }

    fn stmt_strategy() -> impl Strategy<Value = Stmt> {
        let leaf = prop_oneof![
            (ident(), expr_strategy()).prop_map(|(n, e)| Stmt::Let(n, e)),
            (ident(), expr_strategy()).prop_map(|(n, e)| Stmt::Assign(n, e)),
            (ident(), expr_strategy(), expr_strategy())
                .prop_map(|(a, i, v)| Stmt::Store(a, i, v)),
            expr_strategy().prop_map(Stmt::Expr),
        ];
        leaf.prop_recursive(2, 12, 3, |inner| {
            prop_oneof![
                (ident(), expr_strategy(), expr_strategy(), proptest::collection::vec(inner.clone(), 0..3))
                    .prop_map(|(var, lo, hi, body)| Stmt::For { var, lo, hi, body }),
                (expr_strategy(), proptest::collection::vec(inner.clone(), 0..3))
                    .prop_map(|(c, b)| Stmt::While(c, b)),
                (
                    expr_strategy(),
                    proptest::collection::vec(inner.clone(), 0..2),
                    proptest::collection::vec(inner, 0..2)
                )
                    .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
            ]
        })
    }

    fn program_strategy() -> impl Strategy<Value = Program> {
        (
            proptest::collection::vec(
                (ident(), 1usize..64, any::<bool>())
                    .prop_map(|(name, len, is_float)| Item::Array { name, len, is_float }),
                0..2,
            ),
            proptest::collection::vec(
                (ident(), proptest::collection::vec(ident(), 0..3), proptest::collection::vec(stmt_strategy(), 0..4))
                    .prop_map(|(name, params, body)| Item::Function { name, params, body }),
                1..3,
            ),
        )
            .prop_map(|(arrays, funcs)| {
                let mut items: Vec<Item> = arrays;
                items.extend(funcs);
                Program { items }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The printer emits exactly the language the parser accepts.
        #[test]
        fn print_parse_roundtrip(p in program_strategy()) {
            prop_assert_eq!(roundtrip(&p), p);
        }
    }
}
