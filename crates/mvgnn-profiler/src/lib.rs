//! # mvgnn-profiler — DiscoPoP-style hybrid dependence profiler
//!
//! Reimplements the *phase 1* output of DiscoPoP (Li et al.) on top of the
//! `mvgnn-ir` tracing interpreter:
//!
//! - **Dynamic data dependences** ([`deps`], [`profiler`]): every memory
//!   access runs against shadow memory; RAW/WAR/WAW edges are recorded
//!   together with the loops that *carry* them (source and sink in
//!   different iterations).
//! - **Computational units** ([`cu`]): maximal def-use-connected
//!   instruction groups, the graph nodes of the paper's Program Execution
//!   Graphs (Fig. 4).
//! - **Dynamic features** ([`features`]): the Table I feature vector per
//!   loop — instruction count, execution count, critical path length,
//!   estimated speedup, and dependence counts.
//! - **Loop classification** ([`analysis`]): DOALL / reduction /
//!   not-parallelisable verdicts derived from the trace, used both as the
//!   DiscoPoP tool baseline and to validate dataset ground truth.

pub mod analysis;
pub mod cu;
pub mod deps;
pub mod features;
pub mod profiler;

pub use analysis::{classify_loop, reduction_targets, LoopClass};
pub use cu::{build_cus, CuGraph, CuId, CuInfo, CuKind};
pub use deps::{DepGraph, DepKind, Dependence};
pub use features::{loop_features, DynamicFeatures};
pub use profiler::{
    profile_module, profile_module_resilient, DependenceProfiler, LoopRuntime, PartialProfile,
    ProfileResult,
};
