//! Data-dependence records and the dependence graph.

use mvgnn_ir::module::{FuncId, LoopId};
use mvgnn_ir::InstRef;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Kind of a data dependence between two memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DepKind {
    /// Read-after-write (true/flow dependence).
    Raw,
    /// Write-after-read (anti dependence).
    War,
    /// Write-after-write (output dependence).
    Waw,
}

impl std::fmt::Display for DepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DepKind::Raw => write!(f, "RAW"),
            DepKind::War => write!(f, "WAR"),
            DepKind::Waw => write!(f, "WAW"),
        }
    }
}

/// A static dependence edge aggregated over the whole execution.
///
/// `src` is the *earlier* access (the source of the constraint), `dst` the
/// later one, matching DiscoPoP's `⟨SINK, TYPE, SOURCE⟩` triples read
/// right-to-left.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dependence {
    /// Earlier access instruction.
    pub src: InstRef,
    /// Later access instruction.
    pub dst: InstRef,
    /// Dependence kind.
    pub kind: DepKind,
    /// How many dynamic instances were observed.
    pub count: u64,
    /// Loops (innermost set) that carried at least one instance: source and
    /// sink sat in different iterations of that loop.
    pub carried_by: BTreeSet<(FuncId, LoopId)>,
    /// True if at least one instance was loop-independent (same iteration
    /// of every common enclosing loop).
    pub loop_independent: bool,
}

/// Aggregated dependence graph for one profiled execution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DepGraph {
    deps: HashMap<(InstRef, InstRef, DepKind), Dependence>,
}

impl DepGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one dynamic dependence instance.
    pub fn record(
        &mut self,
        src: InstRef,
        dst: InstRef,
        kind: DepKind,
        carried: Option<(FuncId, LoopId)>,
    ) {
        let entry = self.deps.entry((src, dst, kind)).or_insert_with(|| Dependence {
            src,
            dst,
            kind,
            count: 0,
            carried_by: BTreeSet::new(),
            loop_independent: false,
        });
        entry.count += 1;
        match carried {
            Some(l) => {
                entry.carried_by.insert(l);
            }
            None => entry.loop_independent = true,
        }
    }

    /// Number of distinct static dependence edges.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// True when no dependence was observed.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Iterate all dependences in a deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Dependence> {
        let mut v: Vec<&Dependence> = self.deps.values().collect();
        v.sort_by_key(|d| (d.src, d.dst, d.kind));
        v.into_iter()
    }

    /// All dependences carried by the given loop.
    pub fn carried_by(&self, func: FuncId, l: LoopId) -> Vec<&Dependence> {
        self.iter().filter(|d| d.carried_by.contains(&(func, l))).collect()
    }

    /// Look up one edge.
    pub fn get(&self, src: InstRef, dst: InstRef, kind: DepKind) -> Option<&Dependence> {
        self.deps.get(&(src, dst, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_ir::module::BlockId;

    fn r(i: u32) -> InstRef {
        InstRef { func: FuncId(0), block: BlockId(0), idx: i }
    }

    #[test]
    fn record_aggregates_counts() {
        let mut g = DepGraph::new();
        g.record(r(0), r(1), DepKind::Raw, None);
        g.record(r(0), r(1), DepKind::Raw, Some((FuncId(0), LoopId(0))));
        g.record(r(0), r(1), DepKind::War, None);
        assert_eq!(g.len(), 2);
        let d = g.get(r(0), r(1), DepKind::Raw).unwrap();
        assert_eq!(d.count, 2);
        assert!(d.loop_independent);
        assert!(d.carried_by.contains(&(FuncId(0), LoopId(0))));
    }

    #[test]
    fn carried_by_filters() {
        let mut g = DepGraph::new();
        g.record(r(0), r(1), DepKind::Raw, Some((FuncId(0), LoopId(0))));
        g.record(r(2), r(3), DepKind::Waw, Some((FuncId(0), LoopId(1))));
        g.record(r(4), r(5), DepKind::War, None);
        assert_eq!(g.carried_by(FuncId(0), LoopId(0)).len(), 1);
        assert_eq!(g.carried_by(FuncId(0), LoopId(1)).len(), 1);
        assert_eq!(g.carried_by(FuncId(1), LoopId(0)).len(), 0);
    }

    #[test]
    fn iteration_is_deterministic() {
        let mut g = DepGraph::new();
        g.record(r(5), r(6), DepKind::Raw, None);
        g.record(r(1), r(2), DepKind::Raw, None);
        g.record(r(3), r(4), DepKind::Waw, None);
        let order: Vec<u32> = g.iter().map(|d| d.src.idx).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn kind_display() {
        assert_eq!(DepKind::Raw.to_string(), "RAW");
        assert_eq!(DepKind::War.to_string(), "WAR");
        assert_eq!(DepKind::Waw.to_string(), "WAW");
    }
}
