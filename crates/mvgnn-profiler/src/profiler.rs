//! The dependence profiler: a [`Tracer`] implementation with shadow memory
//! and loop-iteration vectors.
//!
//! Every memory cell tracks its last writer and the readers since that
//! write. On each access the profiler compares the *dynamic loop stack* of
//! the two endpoints: the outermost common loop entry whose iteration
//! number differs is the loop that **carries** the dependence; if all
//! common iterations match, the dependence is loop-independent.

use crate::deps::{DepGraph, DepKind};
use mvgnn_ir::interp::{ExecStats, InterpError, Interpreter, Tracer};
use mvgnn_ir::module::{FuncId, LoopId, Module};
use mvgnn_ir::types::{ArrayId, Value};
use mvgnn_ir::InstRef;
use std::collections::HashMap;

/// One dynamic loop activation on the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LoopFrame {
    func: FuncId,
    l: LoopId,
    /// Distinguishes re-entries of the same static loop.
    epoch: u64,
    /// Current iteration within this activation (1-based).
    iter: u64,
}

/// Snapshot of the loop stack at an access.
type StackSnapshot = Vec<LoopFrame>;

/// Per-loop runtime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopRuntime {
    /// Times control entered the loop from outside.
    pub entries: u64,
    /// Total iterations across all entries (`exec_times` in Table I).
    pub iterations: u64,
    /// Dynamic instructions executed while the loop was active.
    pub dyn_insts: u64,
}

#[derive(Debug, Default)]
struct CellState {
    last_write: Option<(InstRef, StackSnapshot)>,
    /// Readers since the last write, keyed by instruction (latest snapshot).
    reads: HashMap<InstRef, StackSnapshot>,
}

/// Tracer that reconstructs the dynamic dependence graph.
#[derive(Debug, Default)]
pub struct DependenceProfiler {
    deps: DepGraph,
    shadow: HashMap<(ArrayId, i64), CellState>,
    stack: Vec<LoopFrame>,
    next_epoch: u64,
    loops: HashMap<(FuncId, LoopId), LoopRuntime>,
}

impl DependenceProfiler {
    /// Fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The aggregated dependence graph.
    pub fn deps(&self) -> &DepGraph {
        &self.deps
    }

    /// Per-loop runtime counters.
    pub fn loop_runtime(&self) -> &HashMap<(FuncId, LoopId), LoopRuntime> {
        &self.loops
    }

    /// Consume the profiler into its parts.
    pub fn into_parts(self) -> (DepGraph, HashMap<(FuncId, LoopId), LoopRuntime>) {
        (self.deps, self.loops)
    }

    /// Find the loop carrying a dependence between two stack snapshots:
    /// the outermost common activation whose iteration numbers differ.
    fn carrier(earlier: &StackSnapshot, later: &StackSnapshot) -> Option<(FuncId, LoopId)> {
        for (a, b) in earlier.iter().zip(later.iter()) {
            if a.func != b.func || a.l != b.l || a.epoch != b.epoch {
                // Different activations: the divergence is accounted to an
                // enclosing loop iteration already checked, or to straight-
                // line re-execution (calls) — not loop-carried here.
                return None;
            }
            if a.iter != b.iter {
                return Some((a.func, a.l));
            }
        }
        None
    }

    fn on_access(&mut self, r: InstRef, arr: ArrayId, idx: i64, is_write: bool) {
        let snap: StackSnapshot = self.stack.clone();
        let cell = self.shadow.entry((arr, idx)).or_default();
        if is_write {
            // WAW against the previous writer.
            if let Some((w, wsnap)) = &cell.last_write {
                let carried = Self::carrier(wsnap, &snap);
                self.deps.record(*w, r, DepKind::Waw, carried);
            }
            // WAR against every reader since the previous write.
            for (rd, rsnap) in cell.reads.drain() {
                let carried = Self::carrier(&rsnap, &snap);
                self.deps.record(rd, r, DepKind::War, carried);
            }
            cell.last_write = Some((r, snap));
        } else {
            // RAW against the last writer.
            if let Some((w, wsnap)) = &cell.last_write {
                let carried = Self::carrier(wsnap, &snap);
                self.deps.record(*w, r, DepKind::Raw, carried);
            }
            cell.reads.insert(r, snap);
        }
    }
}

impl Tracer for DependenceProfiler {
    fn on_inst(&mut self, _r: InstRef, _line: u32) {
        for f in &self.stack {
            self.loops
                .entry((f.func, f.l))
                .or_default()
                .dyn_insts += 1;
        }
    }

    fn on_load(&mut self, r: InstRef, arr: ArrayId, idx: i64) {
        self.on_access(r, arr, idx, false);
    }

    fn on_store(&mut self, r: InstRef, arr: ArrayId, idx: i64) {
        self.on_access(r, arr, idx, true);
    }

    fn on_loop_enter(&mut self, func: FuncId, l: LoopId) {
        self.next_epoch += 1;
        self.stack.push(LoopFrame { func, l, epoch: self.next_epoch, iter: 0 });
        self.loops.entry((func, l)).or_default().entries += 1;
    }

    fn on_loop_iter(&mut self, func: FuncId, l: LoopId) {
        // A malformed event stream (iter with no enclosing enter) is
        // tolerated: the iteration is still counted, only the carried-dep
        // attribution for it is lost. Aborting here would take the whole
        // profiling run down with it.
        if let Some(top) = self.stack.last_mut() {
            debug_assert_eq!((top.func, top.l), (func, l), "loop iter/stack mismatch");
            top.iter += 1;
        }
        self.loops.entry((func, l)).or_default().iterations += 1;
    }

    fn on_loop_exit(&mut self, func: FuncId, l: LoopId) {
        // Tolerate an unmatched exit for the same reason as on_loop_iter.
        if let Some(top) = self.stack.pop() {
            debug_assert_eq!((top.func, top.l), (func, l), "loop exit/stack mismatch");
        }
    }
}

/// Everything one profiled execution produces.
#[derive(Debug)]
pub struct ProfileResult {
    /// Dynamic dependence graph.
    pub deps: DepGraph,
    /// Per-loop runtime counters.
    pub loops: HashMap<(FuncId, LoopId), LoopRuntime>,
    /// Interpreter statistics.
    pub stats: ExecStats,
    /// Entry function's return value.
    pub ret: Option<Value>,
}

/// Profile `entry(args)` against fresh zeroed memory.
pub fn profile_module(
    module: &Module,
    entry: FuncId,
    args: &[Value],
) -> Result<ProfileResult, InterpError> {
    let interp = Interpreter::new(module);
    let mut mem = interp.fresh_memory();
    profile_module_with_memory(module, entry, args, &mut mem)
}

/// Profile `entry(args)` against caller-seeded memory.
pub fn profile_module_with_memory(
    module: &Module,
    entry: FuncId,
    args: &[Value],
    mem: &mut Vec<Vec<Value>>,
) -> Result<ProfileResult, InterpError> {
    let interp = Interpreter::new(module);
    let mut prof = DependenceProfiler::new();
    let (ret, stats) = interp.run_with_memory(entry, args, mem, &mut prof)?;
    let (deps, loops) = prof.into_parts();
    Ok(ProfileResult { deps, loops, stats, ret })
}

/// What a resilient profiling run salvaged: the dependence state observed
/// up to the point the execution stopped, plus the error (if any) that
/// cut it short.
#[derive(Debug)]
pub struct PartialProfile {
    /// Dependences observed before the stop (complete iff `error` is None).
    pub deps: DepGraph,
    /// Per-loop runtime counters observed before the stop.
    pub loops: std::collections::HashMap<(FuncId, LoopId), LoopRuntime>,
    /// Entry return value (None when the run was cut short).
    pub ret: Option<Value>,
    /// The fault that truncated the trace, if the run did not finish.
    pub error: Option<InterpError>,
}

impl PartialProfile {
    /// True when the trace ran to completion.
    pub fn is_complete(&self) -> bool {
        self.error.is_none()
    }
}

/// Profile with explicit interpreter budgets, keeping whatever dependence
/// state was collected when the execution faults (step limit, call-depth
/// limit, out-of-bounds, …) instead of discarding it. A truncated trace
/// still yields the dependences and loop counters of the executed prefix,
/// which downstream consumers can treat as a degraded (single-view or
/// conservative) signal.
pub fn profile_module_resilient(
    module: &Module,
    entry: FuncId,
    args: &[Value],
    max_steps: Option<u64>,
    max_call_depth: Option<u32>,
) -> PartialProfile {
    let mut interp = Interpreter::new(module);
    if let Some(n) = max_steps {
        interp = interp.with_max_steps(n);
    }
    if let Some(n) = max_call_depth {
        interp = interp.with_max_call_depth(n);
    }
    let mut mem = interp.fresh_memory();
    let mut prof = DependenceProfiler::new();
    let (ret, error) = match interp.run_with_memory(entry, args, &mut mem, &mut prof) {
        Ok((ret, _stats)) => (ret, None),
        Err(e) => (None, Some(e)),
    };
    let (deps, loops) = prof.into_parts();
    PartialProfile { deps, loops, ret, error }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_ir::inst::BinOp;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::FunctionBuilder;

    /// `for i in 0..n: b[i] = a[i] * a[i]` — DOALL, no carried deps.
    fn doall_module(n: i64) -> (Module, FuncId, LoopId) {
        let mut m = Module::new("doall");
        let a = m.add_array("a", Ty::F64, n as usize);
        let barr = m.add_array("b", Ty::F64, n as usize);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(n);
        let step = b.const_i64(1);
        let l = b.for_loop(lo, hi, step, |b, iv| {
            let x = b.load(a, iv);
            let y = b.bin(BinOp::Mul, x, x);
            b.store(barr, iv, y);
        });
        let f = b.finish();
        (m, f, l)
    }

    /// `for i in 1..n: a[i] = a[i-1] + 1` — carried RAW.
    fn carried_module(n: i64) -> (Module, FuncId, LoopId) {
        let mut m = Module::new("carried");
        let a = m.add_array("a", Ty::I64, n as usize);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(1);
        let hi = b.const_i64(n);
        let step = b.const_i64(1);
        let one = b.const_i64(1);
        let l = b.for_loop(lo, hi, step, |b, iv| {
            let prev = b.bin(BinOp::Sub, iv, one);
            let x = b.load(a, prev);
            let y = b.bin(BinOp::Add, x, one);
            b.store(a, iv, y);
        });
        let f = b.finish();
        (m, f, l)
    }

    #[test]
    fn doall_has_no_carried_deps() {
        let (m, f, l) = doall_module(16);
        let res = profile_module(&m, f, &[]).unwrap();
        assert!(res.deps.carried_by(f, l).is_empty(), "{:#?}", res.deps.iter().collect::<Vec<_>>());
        // Loop ran 16 iterations.
        assert_eq!(res.loops[&(f, l)].iterations, 16);
        assert_eq!(res.loops[&(f, l)].entries, 1);
        assert!(res.loops[&(f, l)].dyn_insts > 16 * 3);
    }

    #[test]
    fn recurrence_has_carried_raw() {
        let (m, f, l) = carried_module(16);
        let res = profile_module(&m, f, &[]).unwrap();
        let carried = res.deps.carried_by(f, l);
        assert!(
            carried.iter().any(|d| d.kind == DepKind::Raw),
            "expected carried RAW, got {carried:#?}"
        );
    }

    #[test]
    fn same_iteration_deps_are_loop_independent() {
        // b[i] = a[i]; c[i] = b[i] — RAW within one iteration.
        let mut m = Module::new("indep");
        let a = m.add_array("a", Ty::F64, 8);
        let barr = m.add_array("b", Ty::F64, 8);
        let carr = m.add_array("c", Ty::F64, 8);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(8);
        let step = b.const_i64(1);
        let l = b.for_loop(lo, hi, step, |b, iv| {
            let x = b.load(a, iv);
            b.store(barr, iv, x);
            let y = b.load(barr, iv);
            b.store(carr, iv, y);
        });
        let f = b.finish();
        let res = profile_module(&m, f, &[]).unwrap();
        assert!(res.deps.carried_by(f, l).is_empty());
        let raw: Vec<_> = res.deps.iter().filter(|d| d.kind == DepKind::Raw).collect();
        assert!(!raw.is_empty());
        assert!(raw.iter().all(|d| d.loop_independent));
    }

    #[test]
    fn memory_reduction_has_carried_raw_and_waw() {
        // s[0] += a[i] — classic memory-cell reduction.
        let mut m = Module::new("red");
        let a = m.add_array("a", Ty::F64, 8);
        let s = m.add_array("s", Ty::F64, 1);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(8);
        let step = b.const_i64(1);
        let zero = b.const_i64(0);
        let l = b.for_loop(lo, hi, step, |b, iv| {
            let x = b.load(a, iv);
            let cur = b.load(s, zero);
            let nxt = b.bin(BinOp::Add, cur, x);
            b.store(s, zero, nxt);
        });
        let f = b.finish();
        let res = profile_module(&m, f, &[]).unwrap();
        let carried = res.deps.carried_by(f, l);
        let kinds: std::collections::BTreeSet<DepKind> =
            carried.iter().map(|d| d.kind).collect();
        assert!(kinds.contains(&DepKind::Raw), "{kinds:?}");
        assert!(kinds.contains(&DepKind::Waw), "{kinds:?}");
        // The WAR (read at iteration k, write at iteration k) is within
        // one iteration, hence loop-independent — not carried.
        assert!(!kinds.contains(&DepKind::War), "{kinds:?}");
        let war: Vec<_> = res.deps.iter().filter(|d| d.kind == DepKind::War).collect();
        assert!(!war.is_empty() && war.iter().all(|d| d.loop_independent));
    }

    #[test]
    fn inner_carried_dep_does_not_block_outer_loop() {
        // for i { s = 0 (in mem); for j { s += a[i*w+j] }; b[i] = s }
        // The j-loop carries the reduction; the i-loop carries nothing...
        // except the WAR/WAW on the scratch cell between i-iterations.
        // Using a per-i scratch cell indexed by i keeps i clean.
        let w = 4i64;
        let n = 4i64;
        let mut m = Module::new("nested");
        let a = m.add_array("a", Ty::F64, (n * w) as usize);
        let scratch = m.add_array("s", Ty::F64, n as usize);
        let out = m.add_array("b", Ty::F64, n as usize);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hin = b.const_i64(n);
        let hiw = b.const_i64(w);
        let step = b.const_i64(1);
        let wreg = b.const_i64(w);
        let mut inner = None;
        let outer = b.for_loop(lo, hin, step, |b, i| {
            let zero = b.const_f64(0.0);
            b.store(scratch, i, zero);
            let lo2 = b.const_i64(0);
            inner = Some(b.for_loop(lo2, hiw, step, |b, j| {
                let base = b.bin(BinOp::Mul, i, wreg);
                let ij = b.bin(BinOp::Add, base, j);
                let x = b.load(a, ij);
                let cur = b.load(scratch, i);
                let nxt = b.bin(BinOp::Add, cur, x);
                b.store(scratch, i, nxt);
            }));
            let v = b.load(scratch, i);
            b.store(out, i, v);
        });
        let f = b.finish();
        let res = profile_module(&m, f, &[]).unwrap();
        let inner = inner.unwrap();
        assert!(!res.deps.carried_by(f, inner).is_empty(), "inner reduction must be carried");
        assert!(
            res.deps.carried_by(f, outer).is_empty(),
            "outer loop must stay clean: {:#?}",
            res.deps.carried_by(f, outer)
        );
    }

    #[test]
    fn loop_runtime_counts_nested() {
        let (m0, _, _) = doall_module(4);
        let _ = m0;
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(3);
        let step = b.const_i64(1);
        let mut inner = None;
        let outer = b.for_loop(lo, hi, step, |b, _| {
            let lo2 = b.const_i64(0);
            let hi2 = b.const_i64(5);
            inner = Some(b.for_loop(lo2, hi2, step, |_b, _| {}));
        });
        let f = b.finish();
        let res = profile_module(&m, f, &[]).unwrap();
        assert_eq!(res.loops[&(f, outer)].iterations, 3);
        assert_eq!(res.loops[&(f, inner.unwrap())].entries, 3);
        assert_eq!(res.loops[&(f, inner.unwrap())].iterations, 15);
    }

    #[test]
    fn resilient_profiling_salvages_a_truncated_trace() {
        let (m, f, l) = doall_module(64);
        // A starved step budget cuts the loop off mid-flight…
        let partial = profile_module_resilient(&m, f, &[], Some(30), None);
        assert!(matches!(partial.error, Some(InterpError::StepLimit(_))), "{:?}", partial.error);
        assert!(!partial.is_complete());
        // …but the executed prefix is still there.
        let rt = partial.loops.get(&(f, l)).copied().unwrap_or_default();
        assert!(rt.entries >= 1, "loop entry must survive truncation");
        assert!(rt.iterations >= 1 && rt.iterations < 64, "{rt:?}");
        // An adequate budget reports a complete run.
        let full = profile_module_resilient(&m, f, &[], None, None);
        assert!(full.is_complete());
        assert_eq!(full.loops[&(f, l)].iterations, 64);
    }

    #[test]
    fn deps_across_function_calls_are_tracked() {
        // main stores, callee loads the same cell -> RAW across call.
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::I64, 2);
        let reader = {
            let mut b = FunctionBuilder::new(&mut m, "reader", 0);
            let z = b.const_i64(0);
            let v = b.load(a, z);
            b.ret(Some(v));
            b.finish()
        };
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let z = b.const_i64(0);
        let x = b.const_i64(42);
        b.store(a, z, x);
        let v = b.call(reader, &[]);
        b.ret(Some(v));
        let f = b.finish();
        let res = profile_module(&m, f, &[]).unwrap();
        assert_eq!(res.ret, Some(Value::I64(42)));
        let raws: Vec<_> = res.deps.iter().filter(|d| d.kind == DepKind::Raw).collect();
        assert_eq!(raws.len(), 1);
        assert_eq!(raws[0].src.func, f);
        assert_eq!(raws[0].dst.func, reader);
    }
}
