//! Dynamic loop features — the paper's Table I vector.
//!
//! | feature        | description                                      |
//! |----------------|--------------------------------------------------|
//! | `n_inst`       | static IR instructions within the loop           |
//! | `exec_times`   | total iterations observed                        |
//! | `cfl`          | critical path length of the loop dep graph      |
//! | `esp`          | estimated speedup (work/span with width cap)     |
//! | `incoming_dep` | dependences entering the loop from outside       |
//! | `internal_dep` | dependences between loop instructions            |
//! | `outgoing_dep` | dependences leaving the loop                     |

use crate::deps::DepGraph;
use crate::profiler::LoopRuntime;
use mvgnn_graph::{algo, Csr};
use mvgnn_ir::inst::InstRef;
use mvgnn_ir::module::{FuncId, LoopId, Module};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The Table I feature vector for one loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicFeatures {
    /// Number of IR instructions within the loop (static).
    pub n_inst: u32,
    /// Total number of times the loop body executed.
    pub exec_times: u64,
    /// Critical path length over the loop's dependence graph (register
    /// def-use + observed memory dependences; carried edges close cycles,
    /// which serialise through SCC contraction).
    pub cfl: u32,
    /// Estimated speedup: dynamic work divided by the Brent bound
    /// `max(span, work / width)`.
    pub esp: f64,
    /// Dependences with the source outside the loop and the sink inside.
    pub incoming_dep: u32,
    /// Dependences with both endpoints inside the loop.
    pub internal_dep: u32,
    /// Dependences with the source inside the loop and the sink outside.
    pub outgoing_dep: u32,
}

impl DynamicFeatures {
    /// Flatten into the fixed-order f32 vector consumed by the model
    /// (log-scaled counters so magnitudes stay comparable).
    pub fn to_vec(&self) -> [f32; 7] {
        [
            (self.n_inst as f32).ln_1p(),
            (self.exec_times as f32).ln_1p(),
            (self.cfl as f32).ln_1p(),
            (self.esp as f32).ln_1p(),
            (self.incoming_dep as f32).ln_1p(),
            (self.internal_dep as f32).ln_1p(),
            (self.outgoing_dep as f32).ln_1p(),
        ]
    }

    /// Number of features (dimension of [`Self::to_vec`]).
    pub const DIM: usize = 7;
}

/// The set of static instructions inside loop `l` of function `func`
/// (header, body and latch blocks).
pub fn loop_inst_set(module: &Module, func: FuncId, l: LoopId) -> HashSet<InstRef> {
    let f = &module.funcs[func.index()];
    let blocks: HashSet<_> = f.loop_blocks(l).into_iter().collect();
    f.insts_with_refs(func)
        .filter(|(r, _, _)| blocks.contains(&r.block))
        .map(|(r, _, _)| r)
        .collect()
}

/// Compute the Table I features for one loop.
pub fn loop_features(
    module: &Module,
    func: FuncId,
    l: LoopId,
    deps: &DepGraph,
    runtime: &LoopRuntime,
) -> DynamicFeatures {
    let f = &module.funcs[func.index()];
    let inside = loop_inst_set(module, func, l);
    let n_inst = inside.len() as u32;

    // Dependence census.
    let mut incoming = 0u32;
    let mut internal = 0u32;
    let mut outgoing = 0u32;
    for d in deps.iter() {
        let s_in = inside.contains(&d.src);
        let t_in = inside.contains(&d.dst);
        match (s_in, t_in) {
            (true, true) => internal += 1,
            (false, true) => incoming += 1,
            (true, false) => outgoing += 1,
            (false, false) => {}
        }
    }

    // Loop dependence graph: nodes = static insts inside the loop; edges =
    // register def-use + observed memory deps.
    let mut index: HashMap<InstRef, u32> = HashMap::new();
    let mut nodes: Vec<InstRef> = inside.iter().copied().collect();
    nodes.sort_unstable();
    for (i, r) in nodes.iter().enumerate() {
        index.insert(*r, i as u32);
    }
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Register def-use inside the loop (flow-insensitive).
    let mut defs: HashMap<u32, Vec<u32>> = HashMap::new();
    let inst_at: HashMap<InstRef, &mvgnn_ir::Inst> = f
        .insts_with_refs(func)
        .filter(|(r, _, _)| inside.contains(r))
        .map(|(r, inst, _)| (r, inst))
        .collect();
    for (r, inst) in &inst_at {
        if let Some(d) = inst.def() {
            defs.entry(d.0).or_default().push(index[r]);
        }
    }
    for (r, inst) in &inst_at {
        let ui = index[r];
        for u in inst.uses() {
            if let Some(ds) = defs.get(&u.0) {
                for &di in ds {
                    if di != ui {
                        edges.push((di, ui));
                    }
                }
            }
        }
    }
    // Memory dependence edges observed inside the loop.
    for d in deps.iter() {
        if let (Some(&s), Some(&t)) = (index.get(&d.src), index.get(&d.dst)) {
            if s != t {
                edges.push((s, t));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    let csr = Csr::from_edges(nodes.len(), &edges);
    let cfl = algo::critical_path_len(&csr);
    let width = algo::max_level_width(&csr).max(1);

    // Work/span estimate. A loop whose dependence graph is carried
    // (cyclic) serialises across iterations; otherwise iterations overlap
    // and the span is one iteration's critical path.
    let iterations = runtime.iterations.max(1);
    let carried = !deps.carried_by(func, l).is_empty();
    let work = runtime.dyn_insts.max(1) as f64;
    // Parallel width: a carried loop only exposes its intra-iteration
    // width; an independent loop multiplies that by the iteration count.
    let (span, eff_width) = if carried {
        ((iterations as f64) * (cfl.max(1) as f64), width as f64)
    } else {
        (cfl.max(1) as f64, (width as f64) * (iterations as f64))
    };
    let brent = span.max(work / eff_width);
    let esp = (work / brent).clamp(1.0, 1.0e6);

    DynamicFeatures {
        n_inst,
        exec_times: runtime.iterations,
        cfl,
        esp,
        incoming_dep: incoming,
        internal_dep: internal,
        outgoing_dep: outgoing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::profile_module;
    use mvgnn_ir::inst::BinOp;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::{FunctionBuilder, Module};

    fn doall(n: i64) -> (Module, FuncId, LoopId) {
        let mut m = Module::new("doall");
        let a = m.add_array("a", Ty::F64, n as usize);
        let out = m.add_array("b", Ty::F64, n as usize);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(n);
        let st = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let y = b.bin(BinOp::Mul, x, x);
            b.store(out, iv, y);
        });
        let f = b.finish();
        (m, f, l)
    }

    fn recurrence(n: i64) -> (Module, FuncId, LoopId) {
        let mut m = Module::new("rec");
        let a = m.add_array("a", Ty::I64, n as usize);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(1);
        let hi = b.const_i64(n);
        let st = b.const_i64(1);
        let one = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let p = b.bin(BinOp::Sub, iv, one);
            let x = b.load(a, p);
            let y = b.bin(BinOp::Add, x, one);
            b.store(a, iv, y);
        });
        let f = b.finish();
        (m, f, l)
    }

    #[test]
    fn feature_vector_dim_matches() {
        let (m, f, l) = doall(8);
        let res = profile_module(&m, f, &[]).unwrap();
        let feats = loop_features(&m, f, l, &res.deps, &res.loops[&(f, l)]);
        assert_eq!(feats.to_vec().len(), DynamicFeatures::DIM);
        assert!(feats.to_vec().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn exec_times_matches_trip_count() {
        let (m, f, l) = doall(23);
        let res = profile_module(&m, f, &[]).unwrap();
        let feats = loop_features(&m, f, l, &res.deps, &res.loops[&(f, l)]);
        assert_eq!(feats.exec_times, 23);
        assert!(feats.n_inst >= 5, "loop should contain several insts: {feats:?}");
    }

    #[test]
    fn doall_esp_far_exceeds_serial_esp() {
        let n = 64;
        let (md, fd, ld) = doall(n);
        let (ms, fs, ls) = recurrence(n);
        let rd = profile_module(&md, fd, &[]).unwrap();
        let rs = profile_module(&ms, fs, &[]).unwrap();
        let fd_feats = loop_features(&md, fd, ld, &rd.deps, &rd.loops[&(fd, ld)]);
        let fs_feats = loop_features(&ms, fs, ls, &rs.deps, &rs.loops[&(fs, ls)]);
        assert!(
            fd_feats.esp > 4.0 * fs_feats.esp,
            "DOALL esp {} vs serial esp {}",
            fd_feats.esp,
            fs_feats.esp
        );
        assert!(fs_feats.esp < 4.0, "serial chain should not predict speedup");
    }

    #[test]
    fn internal_deps_counted_for_recurrence() {
        let (m, f, l) = recurrence(16);
        let res = profile_module(&m, f, &[]).unwrap();
        let feats = loop_features(&m, f, l, &res.deps, &res.loops[&(f, l)]);
        assert!(feats.internal_dep >= 1, "{feats:?}");
    }

    #[test]
    fn incoming_and_outgoing_deps() {
        // init a[0..n] before loop; read a inside; write b inside; read b after.
        let n = 8i64;
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, n as usize);
        let out = m.add_array("b", Ty::F64, n as usize);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let z = b.const_i64(0);
        let one_f = b.const_f64(1.0);
        b.store(a, z, one_f); // pre-loop write (source of incoming RAW)
        let lo = b.const_i64(0);
        let hi = b.const_i64(n);
        let st = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            b.store(out, iv, x);
        });
        let v = b.load(out, z); // post-loop read (sink of outgoing RAW)
        b.ret(Some(v));
        let f = b.finish();
        let res = profile_module(&m, f, &[]).unwrap();
        let feats = loop_features(&m, f, l, &res.deps, &res.loops[&(f, l)]);
        assert!(feats.incoming_dep >= 1, "{feats:?}");
        assert!(feats.outgoing_dep >= 1, "{feats:?}");
    }

    #[test]
    fn cfl_longer_for_serial_chain() {
        let (md, fd, ld) = doall(32);
        let (ms, fs, ls) = recurrence(32);
        let rd = profile_module(&md, fd, &[]).unwrap();
        let rs = profile_module(&ms, fs, &[]).unwrap();
        let c_doall = loop_features(&md, fd, ld, &rd.deps, &rd.loops[&(fd, ld)]).cfl;
        let c_serial = loop_features(&ms, fs, ls, &rs.deps, &rs.loops[&(fs, ls)]).cfl;
        assert!(
            c_serial > c_doall,
            "serial cfl {c_serial} should exceed doall cfl {c_doall}"
        );
    }
}
