//! Loop classification from the profiled trace: DOALL, recognisable
//! reduction, or not parallelisable.
//!
//! This is the decision procedure DiscoPoP's pattern detection applies to
//! its phase-1 output; here it serves three roles: the DiscoPoP tool
//! baseline of Table III, the validator for constructive dataset labels,
//! and the oracle that turns unlabeled generated kernels into training
//! data.

use crate::deps::DepGraph;
use mvgnn_ir::inst::{BinOp, Inst, InstRef};
use mvgnn_ir::module::{FuncId, LoopId, Module};
use mvgnn_ir::types::VReg;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Classification verdict for a loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopClass {
    /// No loop-carried dependence: iterations are independent.
    DoAll,
    /// Every carried dependence belongs to a recognisable reduction
    /// (commutative update of a fixed cell or scalar accumulator).
    Reduction,
    /// At least one carried dependence is not a reduction.
    NotParallel {
        /// Human-readable reason (first offending dependence).
        reason: String,
    },
}

impl LoopClass {
    /// Parallelisable in the paper's binary labelling (DOALL or reduction).
    pub fn is_parallelizable(&self) -> bool {
        !matches!(self, LoopClass::NotParallel { .. })
    }
}

/// Registers updated in-place by a commutative op inside the loop
/// (`r = r ⊕ x` accumulators), excluding loop induction registers.
fn scalar_accumulators(
    module: &Module,
    func: FuncId,
    l: LoopId,
) -> (HashSet<VReg>, HashSet<VReg>) {
    let f = &module.funcs[func.index()];
    let blocks: HashSet<_> = f.loop_blocks(l).into_iter().collect();
    let inductions: HashSet<VReg> =
        f.loops.iter().filter_map(|info| info.induction).collect();
    let mut commutative = HashSet::new();
    let mut non_commutative = HashSet::new();
    for (r, inst, _) in f.insts_with_refs(func) {
        if !blocks.contains(&r.block) {
            continue;
        }
        if let Inst::Bin { op, dst, lhs, rhs } = inst {
            if (*dst == *lhs || *dst == *rhs) && !inductions.contains(dst) {
                if matches!(op, BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max) {
                    commutative.insert(*dst);
                } else {
                    non_commutative.insert(*dst);
                }
            }
        }
    }
    (commutative, non_commutative)
}

/// Map of single-definition constant registers to their values — used to
/// equate indices that are distinct registers holding the same literal
/// (front-ends materialise a fresh register per literal).
fn const_regs(f: &mvgnn_ir::module::Function) -> std::collections::HashMap<VReg, mvgnn_ir::types::Value> {
    let mut def_count: std::collections::HashMap<VReg, u32> = Default::default();
    let mut value: std::collections::HashMap<VReg, mvgnn_ir::types::Value> = Default::default();
    for blk in &f.blocks {
        for inst in &blk.insts {
            if let Some(d) = inst.def() {
                *def_count.entry(d).or_insert(0) += 1;
            }
            if let Inst::Const { dst, value: v } = inst {
                value.insert(*dst, *v);
            }
        }
    }
    value.retain(|r, _| def_count.get(r) == Some(&1));
    value
}

/// Single-def loads: register -> (array, index register).
fn load_regs(
    f: &mvgnn_ir::module::Function,
) -> std::collections::HashMap<VReg, (mvgnn_ir::types::ArrayId, VReg)> {
    let mut def_count: std::collections::HashMap<VReg, u32> = Default::default();
    let mut loads: std::collections::HashMap<VReg, (mvgnn_ir::types::ArrayId, VReg)> =
        Default::default();
    for blk in &f.blocks {
        for inst in &blk.insts {
            if let Some(d) = inst.def() {
                *def_count.entry(d).or_insert(0) += 1;
            }
            if let Inst::Load { dst, arr, idx } = inst {
                loads.insert(*dst, (*arr, *idx));
            }
        }
    }
    loads.retain(|r, _| def_count.get(r) == Some(&1));
    loads
}

/// Index-equality context for [`same_index`].
struct IndexCtx {
    consts: std::collections::HashMap<VReg, mvgnn_ir::types::Value>,
    loads: std::collections::HashMap<VReg, (mvgnn_ir::types::ArrayId, VReg)>,
    /// Arrays written anywhere inside the analysed loop — loads from these
    /// cannot be assumed stable across the loop body.
    written: HashSet<mvgnn_ir::types::ArrayId>,
}

/// Two index registers address the same cell when they are the same
/// register, both single-def constants of equal value, or both single-def
/// loads of the same cell of an array the loop never writes (front-ends
/// re-materialise subexpressions like `key[i]` per use).
fn same_index(ctx: &IndexCtx, a: VReg, b: VReg) -> bool {
    if a == b {
        return true;
    }
    if matches!((ctx.consts.get(&a), ctx.consts.get(&b)), (Some(x), Some(y)) if x == y) {
        return true;
    }
    if let (Some(&(arr_a, idx_a)), Some(&(arr_b, idx_b))) =
        (ctx.loads.get(&a), ctx.loads.get(&b))
    {
        if arr_a == arr_b && !ctx.written.contains(&arr_a) && same_index(ctx, idx_a, idx_b) {
            return true;
        }
    }
    false
}

/// Instructions participating in memory reduction chains inside the loop:
/// `store A[i] (v)` where `v` flows through a commutative `Bin` from a
/// `load A[i]` of the same cell, all in one block.
fn reduction_chain_insts(module: &Module, func: FuncId, l: LoopId) -> HashSet<InstRef> {
    let f = &module.funcs[func.index()];
    let blocks: HashSet<_> = f.loop_blocks(l).into_iter().collect();
    let written: HashSet<mvgnn_ir::types::ArrayId> = f
        .insts_with_refs(func)
        .filter(|(r, _, _)| blocks.contains(&r.block))
        .filter_map(|(_, inst, _)| match inst {
            Inst::Store { arr, .. } => Some(*arr),
            _ => None,
        })
        .collect();
    let ctx = IndexCtx { consts: const_regs(f), loads: load_regs(f), written };
    let mut chain: HashSet<InstRef> = HashSet::new();
    for (bi, blk) in f.blocks.iter().enumerate() {
        let bid = mvgnn_ir::module::BlockId(bi as u32);
        if !blocks.contains(&bid) {
            continue;
        }
        // Per-block def map (last def wins is fine for straight lines).
        for (si, inst) in blk.insts.iter().enumerate() {
            let Inst::Store { arr, idx, src } = inst else { continue };
            // Find the defining Bin of `src` earlier in this block.
            let mut bin_at = None;
            for (pi, prev) in blk.insts[..si].iter().enumerate().rev() {
                if prev.def() == Some(*src) {
                    if let Inst::Bin { op, lhs, rhs, .. } = prev {
                        if matches!(op, BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max) {
                            bin_at = Some((pi, *lhs, *rhs));
                        }
                    }
                    break;
                }
            }
            let Some((bin_idx, lhs, rhs)) = bin_at else { continue };
            // One operand must be a load of the same array with the same
            // index register, earlier in the block, unclobbered is assumed
            // (blocks are short straight-line regions).
            let mut load_at = None;
            for (pi, prev) in blk.insts[..bin_idx].iter().enumerate().rev() {
                if let Inst::Load { dst, arr: larr, idx: lidx } = prev {
                    if (*dst == lhs || *dst == rhs)
                        && larr == arr
                        && same_index(&ctx, *lidx, *idx)
                    {
                        load_at = Some(pi);
                        break;
                    }
                }
            }
            let Some(load_idx) = load_at else { continue };
            for i in [load_idx, bin_idx, si] {
                chain.insert(InstRef { func, block: bid, idx: i as u32 });
            }
        }
    }
    chain
}

/// Reduction targets of a loop: `(name, op)` for every recognised
/// reduction — array cells updated through a commutative chain and scalar
/// register accumulators (named `%N`). Drives OpenMP `reduction(...)`
/// clause synthesis.
pub fn reduction_targets(module: &Module, func: FuncId, l: LoopId) -> Vec<(String, BinOp)> {
    let f = &module.funcs[func.index()];
    let mut out: Vec<(String, BinOp)> = Vec::new();
    // Memory chains: find the store of each chain and name its array.
    let chains = reduction_chain_insts(module, func, l);
    for r in &chains {
        if let Inst::Store { arr, src, .. } = &f.blocks[r.block.index()].insts[r.idx as usize] {
            // Identify the chain's op from the defining Bin of the stored value.
            let op = f.blocks[r.block.index()].insts[..r.idx as usize]
                .iter()
                .rev()
                .find_map(|p| match p {
                    Inst::Bin { op, dst, .. } if Some(*dst) == Some(*src) => Some(*op),
                    _ => None,
                })
                .unwrap_or(BinOp::Add);
            let name = module.arrays[arr.index()].name.clone();
            if !out.iter().any(|(n, _)| n == &name) {
                out.push((name, op));
            }
        }
    }
    // Scalar accumulators.
    let blocks: HashSet<_> = f.loop_blocks(l).into_iter().collect();
    let inductions: HashSet<VReg> = f.loops.iter().filter_map(|i| i.induction).collect();
    for (r, inst, _) in f.insts_with_refs(func) {
        if !blocks.contains(&r.block) {
            continue;
        }
        if let Inst::Bin { op, dst, lhs, rhs } = inst {
            if (dst == lhs || dst == rhs)
                && !inductions.contains(dst)
                && matches!(op, BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max)
            {
                let name = format!("%{}", dst.0);
                if !out.iter().any(|(n, _)| n == &name) {
                    out.push((name, *op));
                }
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Classify loop `l` of `func` given the profiled dependence graph.
pub fn classify_loop(module: &Module, func: FuncId, l: LoopId, deps: &DepGraph) -> LoopClass {
    let (comm_acc, non_comm_acc) = scalar_accumulators(module, func, l);
    let carried = deps.carried_by(func, l);

    if carried.is_empty() && comm_acc.is_empty() && non_comm_acc.is_empty() {
        return LoopClass::DoAll;
    }
    if let Some(reg) = non_comm_acc.iter().map(|r| r.0).min() {
        return LoopClass::NotParallel {
            reason: format!("non-commutative scalar recurrence on %{reg}"),
        };
    }
    // All carried memory deps must lie on reduction chains.
    let chains = reduction_chain_insts(module, func, l);
    for d in &carried {
        if !(chains.contains(&d.src) && chains.contains(&d.dst)) {
            return LoopClass::NotParallel {
                reason: format!("carried {} {} -> {}", d.kind, d.src, d.dst),
            };
        }
    }
    LoopClass::Reduction
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::profile_module;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::FunctionBuilder;

    fn classify(m: &Module, f: FuncId, l: LoopId) -> LoopClass {
        let res = profile_module(m, f, &[]).unwrap();
        classify_loop(m, f, l, &res.deps)
    }

    #[test]
    fn map_loop_is_doall() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let out = m.add_array("b", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(16);
        let st = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let y = b.bin(BinOp::Mul, x, x);
            b.store(out, iv, y);
        });
        let f = b.finish();
        assert_eq!(classify(&m, f, l), LoopClass::DoAll);
    }

    #[test]
    fn memory_reduction_is_recognised() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let s = m.add_array("s", Ty::F64, 1);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(16);
        let st = b.const_i64(1);
        let zero = b.const_i64(0);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let cur = b.load(s, zero);
            let nxt = b.bin(BinOp::Add, cur, x);
            b.store(s, zero, nxt);
        });
        let f = b.finish();
        assert_eq!(classify(&m, f, l), LoopClass::Reduction);
    }

    #[test]
    fn scalar_accumulator_is_reduction() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(16);
        let st = b.const_i64(1);
        let acc = b.const_f64(0.0);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            b.bin_to(acc, BinOp::Add, acc, x);
        });
        b.ret(Some(acc));
        let f = b.finish();
        assert_eq!(classify(&m, f, l), LoopClass::Reduction);
    }

    #[test]
    fn recurrence_is_not_parallel() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::I64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(1);
        let hi = b.const_i64(16);
        let st = b.const_i64(1);
        let one = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let p = b.bin(BinOp::Sub, iv, one);
            let x = b.load(a, p);
            let y = b.bin(BinOp::Add, x, one);
            b.store(a, iv, y);
        });
        let f = b.finish();
        assert!(!classify(&m, f, l).is_parallelizable());
    }

    #[test]
    fn non_commutative_scalar_recurrence_is_not_parallel() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(16);
        let st = b.const_i64(1);
        let acc = b.const_f64(100.0);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            // acc = acc / x is order-dependent... well, division by a
            // product is commutative, but acc = acc - x * acc is not; use
            // Sub to model an order-sensitive recurrence conservatively.
            let scaled = b.bin(BinOp::Mul, x, acc);
            b.bin_to(acc, BinOp::Sub, acc, scaled);
        });
        b.ret(Some(acc));
        let f = b.finish();
        match classify(&m, f, l) {
            LoopClass::NotParallel { reason } => {
                assert!(reason.contains("non-commutative"), "{reason}");
            }
            other => panic!("expected NotParallel, got {other:?}"),
        }
    }

    #[test]
    fn stencil_read_only_neighbours_is_doall() {
        // b[i] = a[i-1] + a[i+1]: reads overlap but a is never written.
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 18);
        let out = m.add_array("b", Ty::F64, 18);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(1);
        let hi = b.const_i64(17);
        let st = b.const_i64(1);
        let one = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let im1 = b.bin(BinOp::Sub, iv, one);
            let ip1 = b.bin(BinOp::Add, iv, one);
            let left = b.load(a, im1);
            let right = b.load(a, ip1);
            let sum = b.bin(BinOp::Add, left, right);
            b.store(out, iv, sum);
        });
        let f = b.finish();
        assert_eq!(classify(&m, f, l), LoopClass::DoAll);
    }

    #[test]
    fn in_place_stencil_is_not_parallel() {
        // a[i] = a[i-1] + a[i+1] in place: carried RAW and WAR.
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 18);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(1);
        let hi = b.const_i64(17);
        let st = b.const_i64(1);
        let one = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let im1 = b.bin(BinOp::Sub, iv, one);
            let ip1 = b.bin(BinOp::Add, iv, one);
            let left = b.load(a, im1);
            let right = b.load(a, ip1);
            let sum = b.bin(BinOp::Add, left, right);
            b.store(a, iv, sum);
        });
        let f = b.finish();
        assert!(!classify(&m, f, l).is_parallelizable());
    }

    #[test]
    fn outer_loop_with_inner_reduction_is_doall() {
        // Row sums: outer over rows (independent), inner reduces into c[i].
        let n = 4i64;
        let w = 4i64;
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, (n * w) as usize);
        let c = m.add_array("c", Ty::F64, n as usize);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hn = b.const_i64(n);
        let hw = b.const_i64(w);
        let st = b.const_i64(1);
        let wreg = b.const_i64(w);
        let mut inner = None;
        let outer = b.for_loop(lo, hn, st, |b, i| {
            let z = b.const_f64(0.0);
            b.store(c, i, z);
            let lo2 = b.const_i64(0);
            inner = Some(b.for_loop(lo2, hw, st, |b, j| {
                let base = b.bin(BinOp::Mul, i, wreg);
                let ij = b.bin(BinOp::Add, base, j);
                let x = b.load(a, ij);
                let cur = b.load(c, i);
                let nxt = b.bin(BinOp::Add, cur, x);
                b.store(c, i, nxt);
            }));
        });
        let f = b.finish();
        let res = profile_module(&m, f, &[]).unwrap();
        let outer_class = classify_loop(&m, f, outer, &res.deps);
        let inner_class = classify_loop(&m, f, inner.unwrap(), &res.deps);
        // The inner loop reduces into c[i]; the outer loop's iterations
        // touch disjoint cells. Note the inner accumulator chain sits in
        // the outer loop's block range too, so the outer loop sees the
        // reduction as well — both are parallelisable.
        assert!(outer_class.is_parallelizable(), "{outer_class:?}");
        assert_eq!(inner_class, LoopClass::Reduction);
    }
}
