//! Computational-unit (CU) construction.
//!
//! DiscoPoP groups instructions into *computational units* — the nodes of
//! the paper's Program Execution Graph. We use a granularity that keeps
//! the structural patterns of Fig. 1 visible:
//!
//! - every memory access (`Load`, `Store`), `Call`, and conditional
//!   control instruction is a **singleton** CU;
//! - pure compute instructions (`Const`, `Copy`, `Bin`, `Un`) are grouped
//!   into connected components of the register def-use graph;
//! - unconditional `Br` instructions carry no information and join no CU.
//!
//! With this partition a stencil body becomes the *join* motif (two loads
//! feeding one compute CU feeding a store) and a reduction becomes a
//! load → compute → store *cycle* once the carried RAW edge is added —
//! exactly the patterns the structural view is designed to separate.

use mvgnn_ir::inst::{Inst, InstRef};
use mvgnn_ir::module::{FuncId, Module};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// CU index, module-global.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CuId(pub u32);

impl CuId {
    /// Usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a CU contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CuKind {
    /// A single `Load`.
    Load,
    /// A single `Store`.
    Store,
    /// A single `Call`.
    Call,
    /// A def-use component of pure compute instructions.
    Compute,
    /// A conditional branch or return (control).
    Control,
}

/// One computational unit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CuInfo {
    /// Id of this CU.
    pub id: CuId,
    /// Owning function.
    pub func: FuncId,
    /// Kind.
    pub kind: CuKind,
    /// Member instructions, in block order.
    pub members: Vec<InstRef>,
    /// Source line span `[min, max]` over members.
    pub line_span: (u32, u32),
    /// Normalised token (mirrors inst2vec statement normalisation): the
    /// member token for singletons, the dominant op token for compute CUs.
    pub token: String,
}

/// The CU partition of a module plus register def-use edges between CUs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CuGraph {
    /// All CUs.
    pub cus: Vec<CuInfo>,
    /// Map from instruction to its CU (Br instructions are absent).
    pub cu_of: HashMap<InstRef, CuId>,
    /// Register def-use edges `def CU -> user CU` (deduplicated, no
    /// self-edges).
    pub defuse_edges: Vec<(CuId, CuId)>,
}

impl CuGraph {
    /// Number of CUs.
    pub fn len(&self) -> usize {
        self.cus.len()
    }

    /// True when the module produced no CUs.
    pub fn is_empty(&self) -> bool {
        self.cus.is_empty()
    }

    /// The CU of an instruction.
    pub fn cu_of(&self, r: InstRef) -> Option<CuId> {
        self.cu_of.get(&r).copied()
    }
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

/// Build the CU partition for every function of a module.
pub fn build_cus(module: &Module) -> CuGraph {
    let mut cus: Vec<CuInfo> = Vec::new();
    let mut cu_of: HashMap<InstRef, CuId> = HashMap::new();
    let mut defuse_edges: Vec<(CuId, CuId)> = Vec::new();

    for (fi, f) in module.funcs.iter().enumerate() {
        let func = FuncId(fi as u32);
        let insts: Vec<(InstRef, &Inst, u32)> = f.insts_with_refs(func).collect();
        let n = insts.len();
        // Flat index per instruction for union-find.
        let flat_of: HashMap<InstRef, usize> =
            insts.iter().enumerate().map(|(i, (r, _, _))| (*r, i)).collect();

        let is_compute = |inst: &Inst| {
            matches!(inst, Inst::Const { .. } | Inst::Copy { .. } | Inst::Bin { .. } | Inst::Un { .. })
        };

        // Union compute instructions that share register def-use.
        let mut uf = UnionFind::new(n);
        let mut compute_defs: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, (_, inst, _)) in insts.iter().enumerate() {
            if is_compute(inst) {
                if let Some(d) = inst.def() {
                    compute_defs.entry(d.0).or_default().push(i);
                }
            }
        }
        for (i, (_, inst, _)) in insts.iter().enumerate() {
            if !is_compute(inst) {
                continue;
            }
            for u in inst.uses() {
                if let Some(defs) = compute_defs.get(&u.0) {
                    for &d in defs {
                        uf.union(d as u32, i as u32);
                    }
                }
            }
        }

        // Assign CU ids: compute components share, others are singletons.
        let mut comp_cu: HashMap<u32, CuId> = HashMap::new();
        let mut func_cu_of_flat: Vec<Option<CuId>> = vec![None; n];
        for (i, (r, inst, line)) in insts.iter().enumerate() {
            let (kind, key) = match inst {
                Inst::Load { .. } => (CuKind::Load, None),
                Inst::Store { .. } => (CuKind::Store, None),
                Inst::Call { .. } => (CuKind::Call, None),
                Inst::CondBr { .. } | Inst::Ret { .. } => (CuKind::Control, None),
                Inst::Br { .. } => continue,
                _ => (CuKind::Compute, Some(uf.find(i as u32))),
            };
            let id = match key {
                Some(root) => *comp_cu.entry(root).or_insert_with(|| {
                    let id = CuId(cus.len() as u32);
                    cus.push(CuInfo {
                        id,
                        func,
                        kind,
                        members: Vec::new(),
                        line_span: (u32::MAX, 0),
                        token: String::new(),
                    });
                    id
                }),
                None => {
                    let id = CuId(cus.len() as u32);
                    cus.push(CuInfo {
                        id,
                        func,
                        kind,
                        members: Vec::new(),
                        line_span: (u32::MAX, 0),
                        token: String::new(),
                    });
                    id
                }
            };
            let info = &mut cus[id.index()];
            info.members.push(*r);
            info.line_span.0 = info.line_span.0.min(*line);
            info.line_span.1 = info.line_span.1.max(*line);
            cu_of.insert(*r, id);
            func_cu_of_flat[i] = Some(id);
        }

        // Tokens: singleton -> inst token; compute -> dominant member token.
        for cu in cus.iter_mut().filter(|c| c.func == func) {
            let mut tokens: Vec<String> = cu
                .members
                .iter()
                .map(|r| {
                    let i = flat_of[r];
                    insts[i].1.token()
                })
                .collect();
            cu.token = if let [_] = tokens.as_slice() {
                tokens.swap_remove(0)
            } else {
                // Dominant (most frequent, ties by lexicographic order).
                let mut counts: HashMap<&str, usize> = HashMap::new();
                for t in &tokens {
                    *counts.entry(t.as_str()).or_default() += 1;
                }
                let mut best: Vec<(&str, usize)> = counts.into_iter().collect();
                best.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
                format!("compute:{}", best[0].0)
            };
        }

        // Def-use edges between CUs (flow-insensitive over registers).
        let mut all_defs: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, (_, inst, _)) in insts.iter().enumerate() {
            if let Some(d) = inst.def() {
                all_defs.entry(d.0).or_default().push(i);
            }
        }
        for (i, (_, inst, _)) in insts.iter().enumerate() {
            let Some(user_cu) = func_cu_of_flat[i] else { continue };
            for u in inst.uses() {
                if let Some(defs) = all_defs.get(&u.0) {
                    for &d in defs {
                        if let Some(def_cu) = func_cu_of_flat[d] {
                            if def_cu != user_cu {
                                defuse_edges.push((def_cu, user_cu));
                            }
                        }
                    }
                }
            }
        }
    }
    defuse_edges.sort_unstable();
    defuse_edges.dedup();
    CuGraph { cus, cu_of, defuse_edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_ir::inst::BinOp;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::{FunctionBuilder, Module};

    #[test]
    fn figure4_two_independent_chains_get_two_compute_cus() {
        // Mirrors the paper's Fig. 4: two interleaved independent
        // computations (x-chain, y-chain) must form separate CUs.
        let mut m = Module::new("fig4");
        let ax = m.add_array("ax", Ty::F64, 4);
        let ay = m.add_array("ay", Ty::F64, 4);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let i0 = b.const_i64(0);
        let x = b.load(ax, i0);      // x = ...
        let y = b.load(ay, i0);      // y = ...
        let x2 = b.bin(BinOp::Mul, x, x); // uses x
        let y2 = b.bin(BinOp::Add, y, y); // uses y
        let x3 = b.bin(BinOp::Add, x2, x2);
        let y3 = b.bin(BinOp::Mul, y2, y2);
        b.store(ax, i0, x3);
        b.store(ay, i0, y3);
        b.finish();
        let g = build_cus(&m);
        // Compute CUs: {x2,x3} and {y2,y3} — i0 is its own const component
        // shared by neither chain (it feeds loads, which are singletons).
        let compute: Vec<&CuInfo> =
            g.cus.iter().filter(|c| c.kind == CuKind::Compute).collect();
        // i0 const + x-chain + y-chain = 3 compute components.
        assert_eq!(compute.len(), 3, "{compute:#?}");
        let chains: Vec<usize> =
            compute.iter().map(|c| c.members.len()).filter(|&l| l == 2).collect();
        assert_eq!(chains.len(), 2, "expected two 2-inst chains");
    }

    #[test]
    fn memory_and_call_are_singletons() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 4);
        let callee = {
            let b = FunctionBuilder::new(&mut m, "callee", 0);
            b.finish()
        };
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let z = b.const_i64(0);
        let v = b.load(a, z);
        b.store(a, z, v);
        b.call_void(callee, &[]);
        b.finish();
        let g = build_cus(&m);
        let kinds: Vec<CuKind> = g.cus.iter().map(|c| c.kind).collect();
        assert!(kinds.contains(&CuKind::Load));
        assert!(kinds.contains(&CuKind::Store));
        assert!(kinds.contains(&CuKind::Call));
        for c in &g.cus {
            if matches!(c.kind, CuKind::Load | CuKind::Store | CuKind::Call) {
                assert_eq!(c.members.len(), 1);
            }
        }
    }

    #[test]
    fn defuse_edges_connect_load_compute_store() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 4);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let z = b.const_i64(0);
        let x = b.load(a, z);
        let y = b.bin(BinOp::Mul, x, x);
        b.store(a, z, y);
        b.finish();
        let g = build_cus(&m);
        // Find the load, compute(mul), store CUs.
        let find = |k: CuKind| g.cus.iter().find(|c| c.kind == k).map(|c| c.id);
        let load = find(CuKind::Load).unwrap();
        let store = find(CuKind::Store).unwrap();
        let mul = g
            .cus
            .iter()
            .find(|c| c.kind == CuKind::Compute && c.token.contains("mul"))
            .map(|c| c.id)
            .unwrap();
        assert!(g.defuse_edges.contains(&(load, mul)), "{:?}", g.defuse_edges);
        assert!(g.defuse_edges.contains(&(mul, store)), "{:?}", g.defuse_edges);
    }

    #[test]
    fn br_instructions_join_no_cu() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(4);
        let st = b.const_i64(1);
        b.for_loop(lo, hi, st, |_b, _| {});
        b.finish();
        let g = build_cus(&m);
        let f = &m.funcs[0];
        for (r, inst, _) in f.insts_with_refs(mvgnn_ir::module::FuncId(0)) {
            if matches!(inst, mvgnn_ir::Inst::Br { .. }) {
                assert!(g.cu_of(r).is_none());
            } else {
                assert!(g.cu_of(r).is_some(), "no CU for {r} ({inst:?})");
            }
        }
    }

    #[test]
    fn line_spans_cover_members() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let x = b.const_i64(1);
        b.next_line();
        let y = b.bin(BinOp::Add, x, x);
        b.next_line();
        let _z = b.bin(BinOp::Mul, y, y);
        b.finish();
        let g = build_cus(&m);
        let comp = g.cus.iter().find(|c| c.members.len() == 3).unwrap();
        assert!(comp.line_span.1 > comp.line_span.0);
    }

    #[test]
    fn tokens_reflect_kinds() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 4);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let z = b.const_i64(0);
        let x = b.load(a, z);
        b.store(a, z, x);
        b.finish();
        let g = build_cus(&m);
        let toks: Vec<&str> = g.cus.iter().map(|c| c.token.as_str()).collect();
        assert!(toks.contains(&"load"));
        assert!(toks.contains(&"store"));
        assert!(toks.contains(&"const.i64"));
        assert!(toks.contains(&"ret"));
    }
}
