//! Hermetic stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.9 API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random`] and
//! [`Rng::random_range`]. The generator is SplitMix64 — statistically
//! solid for ML-weight initialisation and sampling, fully deterministic,
//! and dependency-free.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" distribution.
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over a `[lo, hi)` / `[lo, hi]` interval.
pub trait SampleUniform: Sized {
    /// Draw one value from the interval; panics when it is empty.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let off = (rng.next_u64() as u128) % span as u128;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges samplable by [`Rng::random_range`]. The single generic impl per
/// range shape (mirroring real rand) lets type inference flow from the
/// call-site result type into unsuffixed range literals.
pub trait SampleRange<T> {
    /// Draw one value from the range; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value from the type's standard distribution.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample a bool with the given probability of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up mix so nearby seeds diverge immediately.
            let mut rng = Self { state: seed ^ 0xdead_beef_cafe_f00d };
            let _ = rng.next_u64();
            rng
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = rng.random_range(0usize..=9);
            assert!(y <= 9);
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f32 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
