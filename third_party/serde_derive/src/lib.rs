//! Hermetic stand-in for `serde_derive`: the derives expand to nothing.
//! Nothing in this workspace serialises through serde — the attributes
//! only mark types as serialisable for future tooling — so empty
//! expansions keep every annotated type compiling unchanged.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
