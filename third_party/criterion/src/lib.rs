//! Hermetic stand-in for `criterion`. Each benchmark body runs a small
//! fixed number of timed iterations and prints a single min-time line,
//! so `cargo bench` smoke-tests the hot paths offline without the real
//! statistics machinery.

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Iterations per benchmark body; enough for a smoke signal, cheap
/// enough for CI.
const ITERS: u32 = 3;

/// Opaque value-consumer mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    function_id: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a displayable parameter.
    pub fn new<P: Display>(function_id: impl Into<String>, parameter: P) -> Self {
        Self {
            function_id: function_id.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function_id, self.parameter)
    }
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    best_ns: u128,
}

impl Bencher {
    /// Run `routine` `ITERS` times, keeping the fastest wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..ITERS {
            let start = Instant::now();
            hint::black_box(routine());
            let ns = start.elapsed().as_nanos();
            self.best_ns = self.best_ns.min(ns);
        }
    }
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { best_ns: u128::MAX };
    f(&mut b);
    if b.best_ns == u128::MAX {
        println!("bench {name:<40} (no measurement)");
    } else {
        println!("bench {:<40} {:>12} ns/iter (min of {})", name, b.best_ns, ITERS);
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmark keyed by a [`BenchmarkId`] with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, |b| f(b, input));
        self
    }

    /// Benchmark keyed by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, f);
        self
    }

    /// End the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Standalone named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, f);
        self
    }
}

/// Declare a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 1), &7u32, |b, &x| {
            b.iter(|| ran += x)
        });
        group.finish();
        assert_eq!(ran, 7 * ITERS);
    }
}
