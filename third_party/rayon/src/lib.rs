//! Hermetic stand-in for the `rayon` crate.
//!
//! Every `par_*` entry point returns the corresponding **sequential**
//! `std` iterator, so all downstream combinators (`map`, `flat_map`,
//! `zip`, `for_each`, `collect`, …) are the ordinary [`Iterator`]
//! methods. Results are identical to rayon's (the workspace only uses
//! order-insensitive reductions); only wall-clock parallelism is lost.

/// Number of worker threads in the (sequential) pool.
pub fn current_num_threads() -> usize {
    1
}

/// Run two closures "in parallel" (sequentially here).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Sequential re-exports of the rayon parallel-iterator traits.
pub mod prelude {
    /// `into_par_iter()` for owned collections and ranges.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in: the plain `into_iter`.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `par_iter()` for collections iterable by reference.
    pub trait IntoParallelRefIterator<'a> {
        /// Item iterator type.
        type Iter: Iterator;
        /// Sequential stand-in: the plain `iter`.
        fn par_iter(&'a self) -> Self::Iter;
    }
    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }
    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    /// `par_iter_mut()` for collections iterable by mutable reference.
    pub trait IntoParallelRefMutIterator<'a> {
        /// Item iterator type.
        type Iter: Iterator;
        /// Sequential stand-in: the plain `iter_mut`.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }
    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }
    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// `par_chunks()` over shared slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in: the plain `chunks`.
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T>;
    }
    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(size)
        }
    }

    /// `par_chunks_mut()` over mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in: the plain `chunks_mut`.
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    }
    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_behave_like_std() {
        let v = vec![1, 2, 3, 4, 5];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
        let sums: Vec<i32> = v.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 7, 5]);
        let squares: Vec<u32> = (0u32..4).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, vec![0, 1, 4, 9]);
        let mut buf = [1i32, 2, 3, 4];
        buf.par_chunks_mut(2).for_each(|c| c.reverse());
        assert_eq!(buf, [2, 1, 4, 3]);
    }
}
