//! Hermetic stand-in for `serde`: marker traits plus the no-op derive
//! macros from the sibling `serde_derive` stub. The workspace only uses
//! `#[derive(Serialize, Deserialize)]` annotations — no code path
//! serialises through serde — so marker traits are sufficient.

/// Marker for serialisable types (no methods in the stand-in).
pub trait Serialize {}

/// Marker for deserialisable types (no methods in the stand-in).
pub trait Deserialize<'de>: Sized {}

/// Marker mirroring serde's owned-deserialisation helper.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
