//! Hermetic stand-in for `proptest`: a deterministic random-testing
//! mini-engine exposing the strategy combinators and macros this
//! workspace uses. No shrinking and no failure persistence — a failing
//! case panics with its deterministic case index, which is enough to
//! reproduce it (same test name + index → same inputs, every run).

// Let the crate's own tests use `proptest::…` paths like downstream code.
extern crate self as proptest;

pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// SplitMix64 generator seeded from the test name and case index, so
    /// every run of a given test explores the identical input sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic RNG for one (test, case) pair.
        pub fn new(test_name: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut rng = Self {
                state: h ^ (u64::from(case) << 32) ^ 0x9e37_79b9_7f4a_7c15,
            };
            rng.next_u64();
            rng
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; panics when `n == 0`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "TestRng::below(0)");
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of random values of one type.
    ///
    /// Unlike real proptest there is no value tree / shrinking: `sample`
    /// draws a concrete value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Reject generated values failing a predicate.
        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }

        /// Build recursive values: apply `recurse` to the strategy `depth`
        /// times, mixing in the original leaf at every level so generated
        /// trees stay bounded. The `_desired_size` / `_expected_branch`
        /// hints of the real API are accepted and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                strat = Union::new(vec![leaf.clone(), recurse(strat).boxed()]).boxed();
            }
            strat
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 1000 consecutive values", self.whence);
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Union over the given arms; panics when empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "empty prop_oneof!");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    (*self.start() as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    // --- tiny regex-subset string strategy --------------------------------

    /// One regex atom: a literal or a character class.
    enum Atom {
        Lit(char),
        /// Inclusive character ranges; single chars are `(c, c)`.
        Class(Vec<(char, char)>),
    }

    impl Atom {
        fn sample(&self, rng: &mut TestRng) -> char {
            match self {
                Atom::Lit(c) => *c,
                Atom::Class(ranges) => {
                    let total: u32 = ranges.iter().map(|&(a, b)| b as u32 - a as u32 + 1).sum();
                    let mut k = rng.below(total as usize) as u32;
                    for &(a, b) in ranges {
                        let w = b as u32 - a as u32 + 1;
                        if k < w {
                            return char::from_u32(a as u32 + k).unwrap_or(a);
                        }
                        k -= w;
                    }
                    unreachable!()
                }
            }
        }
    }

    fn parse_class(chars: &[char], mut i: usize) -> (Atom, usize) {
        let mut ranges = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let a = if chars[i] == '\\' {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                ranges.push((a, chars[i + 2]));
                i += 3;
            } else {
                ranges.push((a, a));
                i += 1;
            }
        }
        assert!(i < chars.len(), "unterminated character class in regex strategy");
        (Atom::Class(ranges), i + 1)
    }

    fn parse_quantifier(chars: &[char], i: usize) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('?') => (0, 1, i + 1),
            Some('*') => (0, 8, i + 1),
            Some('+') => (1, 8, i + 1),
            Some('{') => {
                let mut j = i + 1;
                let mut lo = 0usize;
                while chars[j].is_ascii_digit() {
                    lo = lo * 10 + chars[j] as usize - '0' as usize;
                    j += 1;
                }
                let hi = if chars[j] == ',' {
                    j += 1;
                    let mut h = 0usize;
                    while chars[j].is_ascii_digit() {
                        h = h * 10 + chars[j] as usize - '0' as usize;
                        j += 1;
                    }
                    h
                } else {
                    lo
                };
                assert!(chars[j] == '}', "unterminated {{m,n}} in regex strategy");
                (lo, hi, j + 1)
            }
            _ => (1, 1, i),
        }
    }

    /// Sample a string from a small regex subset: literals, `.`,
    /// `[a-z0-9_]`-style classes, and the `? * + {n} {m,n}` quantifiers.
    pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let (atom, next) = match chars[i] {
                '[' => parse_class(&chars, i + 1),
                '.' => (Atom::Class(vec![(' ', '~')]), i + 1),
                '\\' => (Atom::Lit(chars[i + 1]), i + 2),
                c => (Atom::Lit(c), i + 1),
            };
            let (lo, hi, next) = parse_quantifier(&chars, next);
            let n = lo + rng.below(hi - lo + 1);
            for _ in 0..n {
                out.push(atom.sample(rng));
            }
            i = next;
        }
        out
    }

    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_regex(self, rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mostly ASCII with an occasional wider scalar, mirroring the
            // fuzz-friendly spread of real proptest.
            if rng.below(8) == 0 {
                char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('\u{fffd}')
            } else {
                char::from_u32(0x20 + rng.next_u64() as u32 % 0x5F).unwrap_or('?')
            }
        }
    }

    macro_rules! arbitrary_float {
        ($($t:ident),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    match rng.below(16) {
                        0 => $t::NAN,
                        1 => $t::INFINITY,
                        2 => $t::NEG_INFINITY,
                        3 => 0.0,
                        _ => (rng.unit_f64() as $t - 0.5) * 2.0e6,
                    }
                }
            }
        )*};
    }

    arbitrary_float!(f32, f64);

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector strategy over an element strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Define property tests: each `fn` runs `config.cases` deterministic
/// random cases. Requires an explicit `#[test]` attribute on each
/// property, exactly like the real macro.
#[macro_export]
macro_rules! proptest {
    (@body $config:expr;) => {};
    (@body $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::new(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                $body
            }
        }
        $crate::proptest!(@body $config; $($rest)*);
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies with a shared value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic() {
        let strat = proptest::collection::vec(0u32..100, 1..8);
        let a = strat.sample(&mut TestRng::new("t", 3));
        let b = strat.sample(&mut TestRng::new("t", 3));
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x < 100));
        assert!((1..8).contains(&a.len()));
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::new("re", 0);
        for _ in 0..200 {
            let s = crate::strategy::sample_regex("[a-z][a-z0-9]{0,5}", &mut rng);
            assert!((1..=6).contains(&s.len()), "bad len: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro binds tuple patterns and honours strategies.
        #[test]
        fn macro_binds_patterns((n, v) in (2usize..10).prop_flat_map(|n| {
            (Just(n), proptest::collection::vec(0..n, 1..4))
        })) {
            prop_assert!((2..10).contains(&n));
            for x in v {
                prop_assert!(x < n);
            }
        }

        /// prop_oneof + recursive strategies produce bounded structures.
        #[test]
        fn recursive_strategies_terminate(depth in depth_strategy()) {
            prop_assert!(count(&depth) <= 64, "runaway recursion: {depth:?}");
        }
    }

    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(#[allow(dead_code)] u8),
        Node(Vec<Tree>),
    }

    fn count(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(kids) => 1 + kids.iter().map(count).sum::<usize>(),
        }
    }

    fn depth_strategy() -> impl Strategy<Value = Tree> {
        any::<u8>().prop_map(Tree::Leaf).prop_recursive(3, 16, 3, |inner| {
            proptest::collection::vec(inner, 0..3).prop_map(Tree::Node)
        })
    }
}
