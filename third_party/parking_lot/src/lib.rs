//! Hermetic stand-in for `parking_lot`. The workspace declares but does
//! not currently use it; thin wrappers over `std::sync` keep the common
//! API available (poisoning is swallowed, matching parking_lot
//! semantics).

/// `std::sync::Mutex` with parking_lot's non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Lock, ignoring poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// `std::sync::RwLock` with parking_lot's non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Shared lock, ignoring poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive lock, ignoring poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
