//! Hermetic stand-in for the `bytes` crate: [`Bytes`]/[`BytesMut`] over a
//! plain `Vec<u8>`, plus the little-endian [`Buf`]/[`BufMut`] accessors
//! the workspace's binary formats use.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(Arc::new(data.to_vec()))
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::new(v))
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read-side accessors over a shrinking byte window.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copy `dst.len()` bytes out and advance; panics when short.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "buffer underflow");
        *self = &self[n..];
    }
}

/// Write-side accessors.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xdead_beef);
        buf.put_f32_le(1.5);
        buf.put_u64_le(42);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.remaining(), 18);
        assert_eq!(rd.get_u32_le(), 0xdead_beef);
        assert_eq!(rd.get_f32_le(), 1.5);
        assert_eq!(rd.get_u64_le(), 42);
        let mut tail = [0u8; 2];
        rd.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn short_read_panics() {
        let mut rd: &[u8] = &[1, 2];
        let _ = rd.get_u32_le();
    }
}
