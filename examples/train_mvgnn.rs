//! End-to-end training demo: generate a corpus, train the multi-view
//! model, and report held-out metrics plus per-view agreement.
//!
//! ```sh
//! cargo run --release --example train_mvgnn
//! ```

use mvgnn::core::model::{MvGnn, MvGnnConfig};
use mvgnn::core::trainer::{evaluate, train, TrainConfig};
use mvgnn::dataset::{build_corpus, CorpusConfig, Dataset};
use mvgnn::embed::Inst2VecConfig;
use mvgnn::ir::transform::OptLevel;

fn main() {
    let corpus = CorpusConfig {
        seeds: vec![1],
        opt_levels: vec![OptLevel::O0, OptLevel::O2, OptLevel::O5],
        per_class: Some(150),
        test_fraction: 0.25,
        suite: None,
        inst2vec: Inst2VecConfig { dim: 24, epochs: 2, negatives: 4, lr: 0.05, seed: 5 },
        sample: Default::default(),
        seed: 0xf00d,
        label_noise: 0.03,
        static_features: false,
    };
    println!("building corpus…");
    let ds = build_corpus(&corpus);
    let (tp, tn) = Dataset::class_counts(&ds.train);
    println!("train {} (+{tp}/-{tn}), test {}", ds.train.len(), ds.test.len());

    let probe = &ds.train[0].sample;
    let mut model = MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab));
    let cfg = TrainConfig { epochs: 20, batch_size: 16, ..Default::default() };
    println!("training MV-GNN ({} params)…", model.params.scalar_count());
    let stats = match train(&mut model, &ds.train, &cfg) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("training failed: {e}");
            std::process::exit(1);
        }
    };
    for e in stats.iter().step_by(4) {
        println!("epoch {:>3}: loss {:.4} acc {:.3}", e.epoch, e.loss, e.accuracy);
    }
    let m = evaluate(&model, &ds.test);
    println!("\nheld-out: {m}");
}
