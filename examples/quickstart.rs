//! Quickstart: author a small sequential program in the IR, profile it
//! DiscoPoP-style, and ask whether its loops can be parallelised.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mvgnn::ir::inst::BinOp;
use mvgnn::ir::types::Ty;
use mvgnn::ir::{FunctionBuilder, Module};
use mvgnn::profiler::{classify_loop, loop_features, profile_module};

fn main() {
    // 1. Author a program: a DOALL map followed by a sum reduction and a
    //    serial recurrence, exactly the three regimes of the paper.
    let mut module = Module::new("quickstart");
    let a = module.add_array("a", Ty::F64, 64);
    let b_arr = module.add_array("b", Ty::F64, 64);
    let acc = module.add_array("acc", Ty::F64, 1);

    let mut b = FunctionBuilder::new(&mut module, "main", 0);
    let lo = b.const_i64(0);
    let hi = b.const_i64(64);
    let st = b.const_i64(1);

    // b[i] = a[i]^2                    — independent iterations.
    let map_loop = b.for_loop(lo, hi, st, |b, i| {
        let x = b.load(a, i);
        let y = b.bin(BinOp::Mul, x, x);
        b.store(b_arr, i, y);
    });

    // acc[0] += b[i]                   — a reduction.
    let zero = b.const_i64(0);
    let red_loop = b.for_loop(lo, hi, st, |b, i| {
        let x = b.load(b_arr, i);
        let cur = b.load(acc, zero);
        let nxt = b.bin(BinOp::Add, cur, x);
        b.store(acc, zero, nxt);
    });

    // a[i] = a[i-1] + b[i]             — a loop-carried recurrence.
    let one = b.const_i64(1);
    let lo1 = b.const_i64(1);
    let serial_loop = b.for_loop(lo1, hi, st, |b, i| {
        let p = b.bin(BinOp::Sub, i, one);
        let prev = b.load(a, p);
        let x = b.load(b_arr, i);
        let s = b.bin(BinOp::Add, prev, x);
        b.store(a, i, s);
    });
    let entry = b.finish();

    // 2. Profile: instrumented execution reconstructs every RAW/WAR/WAW
    //    dependence and which loop carries it.
    let result = profile_module(&module, entry, &[]).expect("program runs");
    println!(
        "executed {} instructions, {} loads, {} stores",
        result.stats.steps, result.stats.loads, result.stats.stores
    );
    println!("distinct dependence edges: {}\n", result.deps.len());

    // 3. Classify each loop and print its Table I feature vector.
    for (name, l) in [("map", map_loop), ("reduction", red_loop), ("recurrence", serial_loop)] {
        let class = classify_loop(&module, entry, l, &result.deps);
        let feats =
            loop_features(&module, entry, l, &result.deps, &result.loops[&(entry, l)]);
        println!(
            "loop `{name}`: {class:?}\n    n_inst {} | exec {} | cfl {} | esp {:.1} | deps in/within/out {}/{}/{}",
            feats.n_inst,
            feats.exec_times,
            feats.cfl,
            feats.esp,
            feats.incoming_dep,
            feats.internal_dep,
            feats.outgoing_dep
        );
    }
}
