//! Train a small MV-GNN, persist it to disk, reload into a fresh model
//! and verify identical predictions — the deployment round-trip.
//!
//! ```sh
//! cargo run --release --example save_load_model
//! ```

use mvgnn::core::model::{MvGnn, MvGnnConfig};
use mvgnn::core::trainer::{evaluate, train, TrainConfig};
use mvgnn::dataset::{build_corpus, CorpusConfig, Suite};
use mvgnn::embed::Inst2VecConfig;
use mvgnn::ir::transform::OptLevel;

fn main() {
    let ds = build_corpus(&CorpusConfig {
        seeds: vec![1],
        opt_levels: vec![OptLevel::O0],
        per_class: Some(60),
        test_fraction: 0.25,
        suite: Some(Suite::Npb),
        inst2vec: Inst2VecConfig { dim: 16, epochs: 1, negatives: 2, lr: 0.05, seed: 4 },
        sample: Default::default(),
        seed: 0x5a5e,
        label_noise: 0.0,
        static_features: false,
    });
    let probe = &ds.train[0].sample;
    let cfg = MvGnnConfig::small(probe.node_dim, probe.aw_vocab);
    let mut model = MvGnn::new(cfg.clone());
    train(&mut model, &ds.train, &TrainConfig { epochs: 10, ..Default::default() })
        .expect("training must succeed");
    let metrics = evaluate(&model, &ds.test);
    println!("trained: {metrics}");

    let path = std::env::temp_dir().join("mvgnn_demo.params");
    std::fs::write(&path, model.save()).expect("write params");
    println!("saved {} bytes to {}", std::fs::metadata(&path).unwrap().len(), path.display());

    let mut reloaded = MvGnn::new(cfg);
    let bytes = std::fs::read(&path).expect("read params");
    reloaded.load(&bytes).expect("layout matches");
    let again = evaluate(&reloaded, &ds.test);
    println!("reloaded: {again}");
    assert_eq!(metrics, again, "reloaded model must predict identically");
    println!("round-trip OK");
}
