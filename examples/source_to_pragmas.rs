//! The full user story: write a kernel in the mini language, profile it,
//! and receive OpenMP pragma suggestions per loop — source in, annotated
//! parallelisation plan out.
//!
//! ```sh
//! cargo run --example source_to_pragmas
//! ```

use mvgnn::core::suggest::{annotate_function, Suggestion};
use mvgnn::lang::compile;
use mvgnn::profiler::profile_module;

const SOURCE: &str = r#"
array a[64]: f64;
array b[64]: f64;
array sum[1]: f64;

fn main() {
    // A map: independent iterations.
    for i in 0..64 {
        b[i] = a[i] * a[i] + 1.0;
    }
    // A reduction into one cell.
    for i in 0..64 {
        sum[0] = sum[0] + b[i];
    }
    // A loop-carried recurrence.
    for i in 1..64 {
        a[i] = a[i - 1] * 0.5 + b[i];
    }
}
"#;

fn main() {
    let module = compile(SOURCE).expect("source compiles");
    let entry = module.func_by_name("main").expect("main exists");
    let result = profile_module(&module, entry, &[]).expect("program runs");

    println!("source:\n{SOURCE}");
    println!("suggested parallelisation plan:\n");
    for (line, l, suggestion) in annotate_function(&module, entry, &result.deps) {
        match &suggestion {
            Suggestion::Sequential(reason) => {
                println!("loop {:>2} (line {line:>3}): keep sequential — {reason}", l.0);
            }
            _ => {
                println!("loop {:>2} (line {line:>3}): {}", l.0, suggestion.pragma());
            }
        }
    }
}
