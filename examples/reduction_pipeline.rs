//! Reductions through every analysis in the workspace: ground truth,
//! dynamic profiler, and the three tool baselines — showing exactly where
//! static tools lose accuracy (the Table III story).
//!
//! ```sh
//! cargo run --example reduction_pipeline
//! ```

use mvgnn::baselines::{autopar_like, discopop_like, pluto_like};
use mvgnn::dataset::{build_kernel, KernelKind};
use mvgnn::ir::Module;
use mvgnn::profiler::profile_module;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let kinds = [
        KernelKind::SumReduction,
        KernelKind::DotProduct,
        KernelKind::MaxReduction,
        KernelKind::Histogram,
        KernelKind::MatVec,
        KernelKind::PrefixSum,
    ];
    println!("{:<16} {:<12} {:>6} {:>8} {:>9} {:>9}", "kernel", "ground", "Pluto", "AutoPar", "DiscoPoP", "agrees?");
    for kind in kinds {
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = Module::new("demo");
        let (f, loops) = build_kernel(&mut m, kind, 0, 16, &mut rng);
        let res = profile_module(&m, f, &[]).expect("runs");
        for (l, pattern) in loops {
            let truth = usize::from(pattern.is_parallelizable());
            let pluto = pluto_like(&m, f, l).label();
            let autopar = autopar_like(&m, f, l).label();
            let runtime = res.loops[&(f, l)];
            let discopop = discopop_like(&m, f, l, &res.deps, &runtime).label();
            println!(
                "{:<16} {:<12} {:>6} {:>8} {:>9} {:>9}",
                format!("{kind:?}#{}", l.0),
                format!("{pattern:?}"),
                pluto,
                autopar,
                discopop,
                if discopop == truth { "yes" } else { "NO" }
            );
        }
    }
    println!("\nPluto refuses every reduction (no reduction recognition) while");
    println!("AutoPar and DiscoPoP accept them — the gap behind Table III's");
    println!("Pluto 60.5% vs DiscoPoP 91.2% on NPB.");
}
