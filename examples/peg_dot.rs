//! Emit Graphviz DOT for a generated application's PEG and one loop's
//! sub-PEG (the paper's Fig. 5). Pipe into `dot -Tsvg` to render.
//!
//! ```sh
//! cargo run --example peg_dot > peg.dot
//! ```

use mvgnn::dataset::{generate_app, TABLE2};
use mvgnn::peg::{build_peg, loop_subpeg, to_dot};
use mvgnn::profiler::{build_cus, profile_module};

fn main() {
    // EP is the smallest NPB app (10 loops).
    let app = generate_app(TABLE2[4], 7);
    let res = profile_module(&app.module, app.entry, &[]).expect("runs");
    let cus = build_cus(&app.module);
    let peg = build_peg(&app.module, &cus, &res.deps);

    let (f, l, pattern) = app.loops[0];
    let sub = loop_subpeg(&peg, &app.module, &cus, f, l);
    eprintln!(
        "app {} — {} PEG nodes / {} edges; printing sub-PEG of loop {:?} ({:?}: {} nodes)",
        app.spec.name,
        peg.graph.node_count(),
        peg.graph.edge_count(),
        l,
        pattern,
        sub.graph.node_count()
    );
    println!("{}", to_dot(&sub.graph));
}
