//! Fig. 1 narrative: stencil vs reduction parallelisation patterns are
//! separable from graph structure alone. We build both, extract their
//! sub-PEGs, and show that motif censuses and anonymous-walk
//! distributions disagree exactly where the paper says they should.
//!
//! ```sh
//! cargo run --example stencil_discovery
//! ```

use mvgnn::graph::graphlets::{motif_features, MOTIF_ORDER};
use mvgnn::graph::{AwVocab, Csr, WalkConfig, WalkSampler};
use mvgnn::ir::inst::BinOp;
use mvgnn::ir::types::Ty;
use mvgnn::ir::{FunctionBuilder, Module};
use mvgnn::peg::{build_peg, loop_subpeg};
use mvgnn::profiler::{build_cus, classify_loop, profile_module};

fn main() {
    let mut module = Module::new("fig1");
    let a = module.add_array("a", Ty::F64, 34);
    let out = module.add_array("out", Ty::F64, 34);
    let s = module.add_array("s", Ty::F64, 1);

    let mut b = FunctionBuilder::new(&mut module, "main", 0);
    let lo = b.const_i64(1);
    let hi = b.const_i64(33);
    let st = b.const_i64(1);
    let one = b.const_i64(1);

    // Stencil: out[i] = a[i-1] + a[i] + a[i+1].
    let stencil = b.for_loop(lo, hi, st, |b, i| {
        let im = b.bin(BinOp::Sub, i, one);
        let ip = b.bin(BinOp::Add, i, one);
        let l = b.load(a, im);
        let m = b.load(a, i);
        let r = b.load(a, ip);
        let s1 = b.bin(BinOp::Add, l, m);
        let s2 = b.bin(BinOp::Add, s1, r);
        b.store(out, i, s2);
    });

    // Reduction: s[0] += a[i].
    let zero = b.const_i64(0);
    let reduction = b.for_loop(lo, hi, st, |b, i| {
        let x = b.load(a, i);
        let cur = b.load(s, zero);
        let nxt = b.bin(BinOp::Add, cur, x);
        b.store(s, zero, nxt);
    });
    let entry = b.finish();

    let res = profile_module(&module, entry, &[]).expect("runs");
    let cus = build_cus(&module);
    let peg = build_peg(&module, &cus, &res.deps);

    let vocab = AwVocab::new(4);
    let sampler = WalkSampler::new(WalkConfig { walk_len: 4, walks_per_node: 200, seed: 9 });

    for (name, l) in [("stencil", stencil), ("reduction", reduction)] {
        let class = classify_loop(&module, entry, l, &res.deps);
        let sub = loop_subpeg(&peg, &module, &cus, entry, l);
        let csr = Csr::undirected_from_digraph(&sub.graph);
        let motifs = motif_features(&Csr::from_digraph(&sub.graph));
        let dist = sampler.graph_distribution(&csr, &vocab);
        println!("{name}: {class:?} — {} PEG nodes", sub.graph.node_count());
        print!("    motifs ");
        for (m, v) in MOTIF_ORDER.iter().zip(motifs) {
            print!("{m:?} {v:.2}  ");
        }
        println!();
        println!(
            "    anonymous-walk distribution (l=4): {:?}",
            dist.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
        );
    }
    println!("\nThe reduction's carried RAW closes a cycle through its single");
    println!("accumulator cell; the stencil fans three loads into one store.");
    println!("Those are the two shapes in the paper's Fig. 1.");
}
