//! Fault-tolerant training demo: divergence rollback, epoch checkpoints,
//! resume after an interruption, and rejection of a corrupted checkpoint.
//!
//! ```sh
//! cargo run --release --example fault_tolerant_training
//! ```

use mvgnn::core::model::{MvGnn, MvGnnConfig};
use mvgnn::core::trainer::{train, TrainConfig};
use mvgnn::core::FaultPlan;
use mvgnn::dataset::{build_corpus, CorpusConfig, Suite};
use mvgnn::embed::Inst2VecConfig;
use mvgnn::ir::transform::OptLevel;

fn main() {
    let ds = build_corpus(&CorpusConfig {
        seeds: vec![1],
        opt_levels: vec![OptLevel::O0],
        per_class: Some(40),
        test_fraction: 0.25,
        suite: Some(Suite::PolyBench),
        inst2vec: Inst2VecConfig { dim: 12, epochs: 1, negatives: 2, lr: 0.05, seed: 2 },
        sample: Default::default(),
        seed: 0xfa17,
        label_noise: 0.0,
        static_features: false,
    });
    let probe = &ds.train[0].sample;
    let cfg = MvGnnConfig::small(probe.node_dim, probe.aw_vocab);

    // 1. Divergence recovery: NaN-poison the weights at epoch 2; the
    //    trainer rolls back to the epoch-1 snapshot and halves the lr.
    let mut model = MvGnn::new(cfg.clone());
    let stats = train(
        &mut model,
        &ds.train,
        &TrainConfig {
            epochs: 4,
            fault: Some(FaultPlan::new(7).poison_weights_at(2)),
            ..Default::default()
        },
    )
    .expect("rollback must recover");
    println!("divergence recovery: {} epochs, all losses finite:", stats.len());
    for e in &stats {
        println!("  epoch {}: loss {:.4} acc {:.3}", e.epoch, e.loss, e.accuracy);
    }

    // 2. Checkpoint + resume: train 3 epochs with a checkpoint, then
    //    resume a fresh model from it and run the remaining 3.
    let path = std::env::temp_dir().join("mvgnn_demo.ckpt");
    let mut first = MvGnn::new(cfg.clone());
    let half = TrainConfig {
        epochs: 3,
        checkpoint_path: Some(path.clone()),
        ..Default::default()
    };
    train(&mut first, &ds.train, &half).expect("first half");
    println!("\ninterrupted after 3 epochs; checkpoint at {}", path.display());

    let mut resumed = MvGnn::new(cfg);
    let rest = TrainConfig {
        epochs: 6,
        checkpoint_path: Some(path.clone()),
        resume_from: Some(path.clone()),
        ..Default::default()
    };
    let stats = train(&mut resumed, &ds.train, &rest).expect("resume");
    println!("resumed run telemetry ({} epochs total):", stats.len());
    for e in &stats {
        println!("  epoch {}: loss {:.4} acc {:.3}", e.epoch, e.loss, e.accuracy);
    }

    // 3. A corrupted checkpoint is rejected with a typed error.
    let mut bytes = std::fs::read(&path).expect("checkpoint exists");
    FaultPlan::new(3).corrupt_bytes(&mut bytes, 4);
    std::fs::write(&path, &bytes).expect("rewrite");
    let mut victim = MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab));
    match train(&mut victim, &ds.train, &rest) {
        Err(e) => println!("\ncorrupted checkpoint rejected: {e}"),
        Ok(_) => unreachable!("corruption must not be accepted"),
    }
    std::fs::remove_file(&path).ok();
}
