//! # mvgnn — Multi-View GNN Parallelism Discovery
//!
//! Facade crate re-exporting the full workspace. See the README for a tour.
pub use mvgnn_analyze as analyze;
pub use mvgnn_baselines as baselines;
pub use mvgnn_core as core;
pub use mvgnn_dataset as dataset;
pub use mvgnn_embed as embed;
pub use mvgnn_gnn as gnn;
pub use mvgnn_graph as graph;
pub use mvgnn_ir as ir;
pub use mvgnn_lang as lang;
pub use mvgnn_nn as nn;
pub use mvgnn_peg as peg;
pub use mvgnn_profiler as profiler;
pub use mvgnn_serve as serve;
pub use mvgnn_tensor as tensor;
