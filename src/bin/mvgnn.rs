//! `mvgnn` — command-line interface to the parallelism-discovery pipeline.
//!
//! ```text
//! mvgnn classify <file.mv>   profile a mini-language program and print a
//!                            per-loop parallelisation plan with pragmas
//! mvgnn dot <file.mv>        emit the program's PEG as Graphviz DOT
//! mvgnn ir <file.mv>         print the lowered IR in its textual form
//! mvgnn run <file.mv>        execute `main` and print the return value
//! ```

use mvgnn::core::suggest::{annotate_function, Suggestion};
use mvgnn::ir::interp::{Interpreter, NoTracer};
use mvgnn::lang::compile;
use mvgnn::peg::{build_peg, to_dot};
use mvgnn::profiler::{build_cus, loop_features, profile_module_resilient};

fn usage() -> ! {
    eprintln!("usage: mvgnn <classify|dot|ir|run> <file.mv>");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (cmd, path) = match (args.get(1), args.get(2)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => usage(),
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mvgnn: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let module = match compile(&src) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("mvgnn: {e}");
            std::process::exit(1);
        }
    };
    let Some(entry) = module.func_by_name("main") else {
        eprintln!("mvgnn: program has no `main`");
        std::process::exit(1);
    };

    match cmd {
        "ir" => print!("{}", mvgnn::ir::text::print_module(&module)),
        "run" => match Interpreter::new(&module).run(entry, &[], &mut NoTracer) {
            Ok((ret, stats)) => {
                println!(
                    "returned {:?} after {} instructions ({} loads, {} stores)",
                    ret, stats.steps, stats.loads, stats.stores
                );
            }
            Err(e) => {
                eprintln!("mvgnn: runtime error: {e}");
                std::process::exit(1);
            }
        },
        "dot" => {
            // A partial trace still yields a (partial) PEG — better than
            // aborting on a runaway or faulting program.
            let result = profile_module_resilient(&module, entry, &[], None, None);
            if let Some(e) = &result.error {
                eprintln!("mvgnn: warning: trace incomplete ({e}); PEG reflects the executed prefix");
            }
            let cus = build_cus(&module);
            let peg = build_peg(&module, &cus, &result.deps);
            print!("{}", to_dot(&peg.graph));
        }
        "classify" => {
            let result = profile_module_resilient(&module, entry, &[], None, None);
            if let Some(e) = &result.error {
                eprintln!(
                    "mvgnn: warning: trace incomplete ({e}); verdicts degrade conservatively"
                );
            }
            println!("{path}: {} loops\n", module.loop_count());
            for (line, l, suggestion) in annotate_function(&module, entry, &result.deps) {
                let runtime = result.loops.get(&(entry, l)).copied().unwrap_or_default();
                let feats = loop_features(&module, entry, l, &result.deps, &runtime);
                // With an incomplete trace the dependence evidence is a
                // lower bound: a loop the fault cut off entirely gets a
                // conservative serial verdict, and any "parallel" verdict
                // is flagged as based on a partial trace.
                let verdict = match (&suggestion, &result.error) {
                    (Suggestion::Sequential(reason), _) => format!("sequential ({reason})"),
                    (_, Some(_)) if runtime.entries == 0 => {
                        "sequential (conservative: loop not reached before the fault)".to_string()
                    }
                    (other, Some(_)) => format!("{} [partial trace]", other.pragma()),
                    (other, None) => other.pragma(),
                };
                println!(
                    "loop {:>2} @ line {:>4}: {verdict}\n             trips {} | insts {} | cfl {} | esp {:.1} | deps {}/{}/{}",
                    l.0,
                    line,
                    feats.exec_times,
                    feats.n_inst,
                    feats.cfl,
                    feats.esp,
                    feats.incoming_dep,
                    feats.internal_dep,
                    feats.outgoing_dep
                );
            }
        }
        _ => usage(),
    }
}
