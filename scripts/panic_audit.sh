#!/usr/bin/env bash
# Panic-site ratchet: counts potential panic sites (panic!, unwrap,
# expect, unreachable!, todo!, unimplemented!, assert on user input) in
# non-test code and fails if the count grows past the committed baseline.
#
# Test code is excluded: everything under a `#[cfg(test)]` module (counted
# from the attribute to end-of-file, since test modules sit last by
# convention here), files under tests/, and doc comments.
#
# Usage:
#   scripts/panic_audit.sh           # audit against the baseline
#   scripts/panic_audit.sh --count   # just print the current count
#
# Lower the baseline when you remove panic sites; never raise it.

set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=19

count_file() {
    # Strip everything from the first `#[cfg(test)]` line onward, drop
    # comment-only lines and `.expect(..)?` (a Result-returning cursor
    # method, not Option::expect), then count panic-prone call sites.
    awk '/#\[cfg\(test\)\]/{exit} {print}' "$1" |
        grep -v '^\s*//' |
        sed -E 's/\.expect\([^()]*\)\?//g' |
        grep -cE '\.unwrap\(\)|\.expect\(|panic!|unreachable!|todo!|unimplemented!' || true
}

total=0
while IFS= read -r f; do
    n=$(count_file "$f")
    total=$((total + n))
    if [[ "${VERBOSE:-0}" == "1" && "$n" -gt 0 ]]; then
        printf '%4d %s\n' "$n" "$f"
    fi
done < <(find crates src -name '*.rs' -not -path '*/target/*' -not -path '*/tests/*' | sort)

if [[ "${1:-}" == "--count" ]]; then
    echo "$total"
    exit 0
fi

echo "panic sites (non-test): $total (baseline $BASELINE)"
if (( total > BASELINE )); then
    echo "FAIL: panic-site count grew past the baseline." >&2
    echo "Convert new panics to typed errors (mvgnn_core::MvGnnError) or" >&2
    echo "move them under #[cfg(test)]; only lower the baseline." >&2
    exit 1
fi
echo "OK"
