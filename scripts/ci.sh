#!/usr/bin/env bash
# Local CI gate: everything a PR must pass, in the order that fails
# fastest. Run from anywhere; exits non-zero on the first failure.
#
#   scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build (release)"
cargo build --release --workspace --quiet

echo "==> tests (workspace)"
cargo test -q --workspace

echo "==> clippy (-D warnings)"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> concurrent-engine parity"
cargo test -q --test concurrent_parity

echo "==> engine smoke (one batch through the inference engine)"
cargo run --release -p mvgnn-bench --bin throughput --quiet -- --smoke

echo "==> alloc smoke (pooled steady state stays under budget)"
cargo run --release -p mvgnn-bench --features count-allocs --bin throughput --quiet -- --alloc-smoke

echo "==> serve smoke (forced-overload storm: typed sheds, zero panics, liveness)"
cargo run --release -p mvgnn-bench --bin serve --quiet -- --smoke

echo "==> corpus label audit (static oracle vs profiler, per-shard merge, smoke slice)"
cargo run --release -p mvgnn-bench --bin lint --quiet -- --smoke

echo "==> corpus pipeline smoke (shard-union parity + bounded-RSS streaming epoch)"
cargo run --release -p mvgnn-bench --bin corpus --quiet -- --smoke

echo "==> cascade smoke (tier-0 short-circuit rate > 0, throughput >= pure GNN)"
cargo run --release -p mvgnn-bench --bin cascade --quiet -- --smoke

echo "==> coldstart smoke (mapped MVCK-v2 loads, bit parity, cold start <= eager)"
cargo run --release -p mvgnn-bench --bin coldstart --quiet -- --smoke

echo "==> patterns smoke (planner proves in every family, zero rule-C contradictions)"
cargo run --release -p mvgnn-bench --bin patterns --quiet -- --smoke

echo "==> rustdoc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> panic-site ratchet"
bash scripts/panic_audit.sh

echo "CI OK"
