//! Cross-crate integration: IR → profiler → PEG → features → model, on
//! real generated benchmark suites.

use mvgnn::baselines::Metrics;
use mvgnn::core::model::{MvGnn, MvGnnConfig};
use mvgnn::core::trainer::{evaluate, train, TrainConfig};
use mvgnn::dataset::{
    build_corpus, generate_suite, CorpusConfig, PatternKind, Suite,
};
use mvgnn::embed::Inst2VecConfig;
use mvgnn::ir::transform::OptLevel;
use mvgnn::ir::verify::verify_module;
use mvgnn::profiler::{classify_loop, profile_module};

fn tiny_corpus(suite: Option<Suite>, per_class: usize) -> mvgnn::dataset::Dataset {
    build_corpus(&CorpusConfig {
        seeds: vec![1],
        opt_levels: vec![OptLevel::O0, OptLevel::O3],
        per_class: Some(per_class),
        test_fraction: 0.25,
        suite,
        inst2vec: Inst2VecConfig { dim: 12, epochs: 1, negatives: 2, lr: 0.05, seed: 2 },
        sample: Default::default(),
        seed: 0xbeef,
        label_noise: 0.0,
        static_features: false,
    })
}

/// Every loop of every generated app must (a) verify, (b) execute, and
/// (c) have a profiler verdict that matches the constructive label.
#[test]
fn ground_truth_agrees_with_profiler_across_all_suites() {
    let mut checked = 0usize;
    for app in generate_suite(None, 17) {
        verify_module(&app.module).unwrap_or_else(|e| panic!("{}: {e}", app.spec.name));
        let res = profile_module(&app.module, app.entry, &[])
            .unwrap_or_else(|e| panic!("{}: {e}", app.spec.name));
        for ((f, l, pattern), kind) in app.loops.iter().zip(&app.loop_kinds) {
            let class = classify_loop(&app.module, *f, *l, &res.deps);
            if kind.trace_limited() {
                assert!(
                    class.is_parallelizable() && !pattern.is_parallelizable(),
                    "{} loop {l:?}: trace-limited template must look parallel in the trace",
                    app.spec.name
                );
                checked += 1;
                continue;
            }
            assert_eq!(
                class.is_parallelizable(),
                pattern.is_parallelizable(),
                "{} loop {:?} ({:?}): profiler says {:?}",
                app.spec.name,
                l,
                pattern,
                class
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 840, "Table II total");
}

/// Optimisation variants must preserve the ground truth: a DOALL loop
/// stays DOALL at every opt level.
#[test]
fn opt_levels_preserve_loop_classification() {
    let app = generate_suite(Some(Suite::PolyBench), 3)
        .into_iter()
        .find(|a| a.spec.name == "2mm")
        .expect("2mm generated");
    for level in OptLevel::ALL {
        let module = mvgnn::ir::transform::optimize(&app.module, level);
        verify_module(&module).unwrap_or_else(|e| panic!("{level:?}: {e}"));
        let res = profile_module(&module, app.entry, &[])
            .unwrap_or_else(|e| panic!("{level:?}: {e}"));
        for ((f, l, pattern), kind) in app.loops.iter().zip(&app.loop_kinds) {
            if kind.trace_limited() {
                continue;
            }
            let class = classify_loop(&module, *f, *l, &res.deps);
            assert_eq!(
                class.is_parallelizable(),
                pattern.is_parallelizable(),
                "{level:?} flipped loop {l:?} ({pattern:?} -> {class:?})"
            );
        }
    }
}

/// The MV-GNN must learn the task well above chance on held-out loops.
#[test]
fn mvgnn_learns_above_chance() {
    let ds = tiny_corpus(None, 60);
    assert!(ds.train.len() >= 40, "train set too small: {}", ds.train.len());
    let probe = &ds.train[0].sample;
    let mut model = MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab));
    train(
        &mut model,
        &ds.train,
        &TrainConfig { epochs: 15, batch_size: 12, ..Default::default() },
    )
    .expect("training must succeed");
    let m: Metrics = evaluate(&model, &ds.test);
    assert!(
        m.accuracy() > 0.65,
        "balanced test accuracy should beat chance clearly: {m}"
    );
}

/// BOTS apps include task loops and the corpus carries them through.
#[test]
fn bots_task_loops_flow_into_corpus() {
    let apps = generate_suite(Some(Suite::Bots), 5);
    assert_eq!(apps.len(), 2);
    let task_loops: usize = apps
        .iter()
        .flat_map(|a| &a.loops)
        .filter(|(_, _, p)| *p == PatternKind::Task)
        .count();
    assert!(task_loops >= 2, "each BOTS app leads with a task loop");
}

/// Samples coming out of the corpus are structurally sound for the model.
#[test]
fn corpus_samples_are_consistent() {
    let ds = tiny_corpus(Some(Suite::Npb), 40);
    for s in ds.train.iter().chain(&ds.test) {
        assert!(s.sample.n > 0);
        assert_eq!(s.sample.node_feats.len(), s.sample.n * s.sample.node_dim);
        assert_eq!(s.sample.struct_dists.len(), s.sample.n * s.sample.aw_vocab);
        assert_eq!(s.sample.adj.rows(), s.sample.n);
        assert!(s.sample.token_ids.len() >= s.sample.n);
        assert!(s.sample.node_feats.iter().all(|x| x.is_finite()));
        assert_eq!(s.suite, Suite::Npb);
    }
}
