//! Property-based tests over the core data structures and invariants.

use mvgnn::graph::{algo, anonymous_walk, Csr};
use mvgnn::ir::inst::BinOp;
use mvgnn::ir::interp::{Interpreter, NoTracer};
use mvgnn::ir::text::{parse_module, print_module};
use mvgnn::ir::transform::{optimize, OptLevel};
use mvgnn::ir::types::{Ty, Value};
use mvgnn::ir::verify::verify_module;
use mvgnn::ir::{FunctionBuilder, Module};
use proptest::prelude::*;

/// Arbitrary edge list over `n` nodes.
fn edges_strategy(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..n * 3))
    })
}

proptest! {
    /// CSR transpose is an involution.
    #[test]
    fn csr_transpose_involution((n, edges) in edges_strategy(32)) {
        let mut dedup = edges.clone();
        dedup.sort_unstable();
        dedup.dedup();
        let csr = Csr::from_edges(n, &dedup);
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    /// Every edge is visible from both the forward and transposed CSR.
    #[test]
    fn csr_edge_membership((n, edges) in edges_strategy(32)) {
        let csr = Csr::from_edges(n, &edges);
        let t = csr.transpose();
        for &(s, d) in &edges {
            prop_assert!(csr.contains_edge(s, d));
            prop_assert!(t.contains_edge(d, s));
        }
    }

    /// Anonymous walks are valid restricted-growth strings.
    #[test]
    fn anonymous_walks_are_restricted_growth(walk in proptest::collection::vec(0u32..16, 1..12)) {
        let aw = anonymous_walk(&walk);
        prop_assert_eq!(aw.len(), walk.len());
        prop_assert_eq!(aw[0], 0);
        let mut max = 0u8;
        for &x in &aw[1..] {
            prop_assert!(x <= max + 1);
            max = max.max(x);
        }
        // Re-anonymising an anonymous walk is the identity.
        let back: Vec<u32> = aw.iter().map(|&x| x as u32).collect();
        prop_assert_eq!(anonymous_walk(&back), aw);
    }

    /// The critical path of a DAG is bounded by node count − 1 and the
    /// topological order exists exactly when Tarjan finds no cycles.
    #[test]
    fn critical_path_and_scc_agree((n, edges) in edges_strategy(24)) {
        // Drop self-loops to test the pure-DAG relationship too.
        let csr = Csr::from_edges(n, &edges);
        let scc = algo::tarjan_scc(&csr);
        let has_cycle = scc.component_count < n
            || edges.iter().any(|&(s, d)| s == d);
        let topo = algo::topological_order(&csr);
        if !has_cycle {
            prop_assert!(topo.is_some(), "acyclic graph must have a topo order");
            prop_assert!(algo::critical_path_len(&csr) <= (n as u32).saturating_sub(1));
        } else if edges.iter().all(|&(s, d)| s != d) && scc.component_count < n {
            prop_assert!(topo.is_none(), "cyclic graph must not have a topo order");
        }
    }

    /// BFS distances are monotone along edges: d(t) ≤ d(s) + 1.
    #[test]
    fn bfs_triangle_inequality((n, edges) in edges_strategy(24)) {
        let csr = Csr::from_edges(n, &edges);
        let dist = algo::bfs_distances(&csr, 0);
        for s in 0..n as u32 {
            if dist[s as usize] == u32::MAX { continue; }
            for &t in csr.neighbors(s) {
                prop_assert!(dist[t as usize] <= dist[s as usize] + 1);
            }
        }
    }
}

/// A random straight-line + single-loop program for differential tests.
fn random_program(ops: &[u8], n: i64) -> (Module, mvgnn::ir::module::FuncId) {
    let mut m = Module::new("prop");
    let a = m.add_array("a", Ty::F64, n as usize);
    let out = m.add_array("b", Ty::F64, n as usize);
    let mut b = FunctionBuilder::new(&mut m, "main", 0);
    let lo = b.const_i64(0);
    let hi = b.const_i64(n);
    let st = b.const_i64(1);
    let seedv = b.const_f64(1.5);
    b.store(a, lo, seedv);
    b.for_loop(lo, hi, st, |b, iv| {
        let mut x = b.load(a, iv);
        for &op in ops {
            let o = match op % 4 {
                0 => BinOp::Add,
                1 => BinOp::Mul,
                2 => BinOp::Sub,
                _ => BinOp::Max,
            };
            x = b.bin(o, x, x);
        }
        b.store(out, iv, x);
    });
    let v = b.load(out, lo);
    b.ret(Some(v));
    let f = b.finish();
    (m, f)
}

fn run(m: &Module, f: mvgnn::ir::module::FuncId) -> Option<Value> {
    Interpreter::new(m).run(f, &[], &mut NoTracer).expect("runs").0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Textual round-trip preserves observable behaviour.
    #[test]
    fn text_roundtrip_preserves_behaviour(ops in proptest::collection::vec(any::<u8>(), 1..8), n in 4i64..24) {
        let (m, f) = random_program(&ops, n);
        verify_module(&m).unwrap();
        let m2 = parse_module(&print_module(&m)).expect("parses");
        verify_module(&m2).unwrap();
        prop_assert_eq!(run(&m, f), run(&m2, f));
    }

    /// Every optimisation level preserves observable behaviour.
    #[test]
    fn optimisation_preserves_behaviour(ops in proptest::collection::vec(any::<u8>(), 1..8), n in 4i64..24) {
        let (m, f) = random_program(&ops, n);
        let expect = run(&m, f);
        for level in OptLevel::ALL {
            let opt = optimize(&m, level);
            verify_module(&opt).unwrap();
            prop_assert_eq!(run(&opt, f), expect, "{:?} changed behaviour", level);
        }
    }
}
