//! Never-panic fuzzing of the two text front ends: the `.mv` language
//! (lexer → parser → lowering) and the IR text parser. Any input —
//! printable noise, raw bytes, token soup, or a mangled valid program —
//! must come back as `Ok` or a typed error, never a panic.

use mvgnn::core::FaultPlan;
use mvgnn::ir::text::{parse_module, print_module};
use mvgnn::lang::{compile, parse, tokenize};
use proptest::prelude::*;

const VALID: &str = r#"
array a[32]: f64;
array b[32]: f64;

fn main() {
    for i in 0..32 {
        b[i] = a[i] * 2.0 + 1.0;
    }
    for i in 1..32 {
        a[i] = a[i - 1] * 0.5;
    }
}
"#;

fn frontend_survives(src: &str) {
    if let Ok(tokens) = tokenize(src) {
        let _ = parse(&tokens);
    }
    let _ = compile(src);
}

/// Join random picks from the language's own vocabulary: inputs that lex
/// cleanly but stress the parser and lowering far deeper than raw noise.
fn token_soup(picks: &[u8]) -> String {
    const VOCAB: &[&str] = &[
        "fn", "for", "in", "array", "let", "if", "else", "return", "main", "i", "x", "a", "b",
        "f64", "i64", "0", "1", "64", "2.5", "..", "{", "}", "(", ")", "[", "]", ";", ":", ",",
        "=", "+", "-", "*", "/", "%", "<", ">", "==",
    ];
    picks
        .iter()
        .map(|&p| VOCAB[p as usize % VOCAB.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Printable-ASCII noise through the whole .mv front end.
    #[test]
    fn lang_frontend_never_panics_on_printable_noise(src in "[ -~]{0,90}") {
        frontend_survives(&src);
    }

    /// Arbitrary bytes (lossily decoded, so including newlines, control
    /// characters and U+FFFD) through the whole .mv front end.
    #[test]
    fn lang_frontend_never_panics_on_raw_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..120)) {
        frontend_survives(&String::from_utf8_lossy(&bytes));
    }

    /// Well-lexed token soup: every pick is a legal token, so the parser
    /// and lowering see deep, almost-valid structures.
    #[test]
    fn lang_frontend_never_panics_on_token_soup(picks in proptest::collection::vec(any::<u8>(), 0..60)) {
        frontend_survives(&token_soup(&picks));
    }

    /// Seed-keyed corruption of a known-good program.
    #[test]
    fn lang_frontend_never_panics_on_mangled_valid_source(seed in 0u64..10_000, frac in 0.0f64..1.0) {
        let plan = FaultPlan::new(seed);
        frontend_survives(&plan.truncate_source(VALID, frac));
        frontend_survives(&plan.mangle_source(VALID));
    }

    /// IR text parser on printable noise.
    #[test]
    fn ir_text_parser_never_panics_on_noise(src in "[ -~]{0,90}") {
        let _ = parse_module(&src);
    }

    /// IR text parser on corrupted but realistic module listings.
    #[test]
    fn ir_text_parser_never_panics_on_mangled_listing(seed in 0u64..10_000, frac in 0.0f64..1.0) {
        let m = compile(VALID).expect("reference program compiles");
        let listing = print_module(&m);
        let plan = FaultPlan::new(seed);
        let _ = parse_module(&plan.truncate_source(&listing, frac));
        let _ = parse_module(&plan.mangle_source(&listing));
    }
}
