//! Batched vs per-sample execution parity.
//!
//! The batched path (`GraphBatch` → block-diagonal `spmm` → segment-aware
//! SortPooling/conv/pool) must be *bit-identical* to running each graph
//! alone, not merely close: every kernel accumulates per output element
//! in the same order regardless of how rows are packed. These tests pin
//! that contract at the encoder level (raw `f32` bits) and at the model
//! level (predictions over a full test split).

use mvgnn::core::model::{MvGnn, MvGnnConfig};
use mvgnn::core::trainer::{train, TrainConfig};
use mvgnn::dataset::{build_corpus, CorpusConfig};
use mvgnn::embed::Inst2VecConfig;
use mvgnn::gnn::{gcn_adjacency, Dgcnn, DgcnnConfig};
use mvgnn::graph::Csr;
use mvgnn::tensor::{init, Params, SparseMatrix, Tape};

fn small_cfg(in_dim: usize) -> DgcnnConfig {
    DgcnnConfig {
        in_dim,
        gc_dims: vec![6, 4, 1],
        k: 5, // odd on purpose: the tail pooling window must not straddle graphs
        conv1_out: 4,
        conv2_ksize: 2,
        conv2_out: 3,
        dense_hidden: 8,
        classes: 2,
    }
}

/// Node features for a ring graph of `n` nodes. `tied == true` makes
/// every node identical, which collapses all SortPooling keys of that
/// graph into one tie class — the packed and solo paths must break the
/// ties identically (by local row order).
fn ring(n: usize, in_dim: usize, tied: bool, salt: f32) -> (SparseMatrix, Vec<f32>) {
    let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    let adj = gcn_adjacency(&Csr::from_edges(n, &edges));
    let feats: Vec<f32> = (0..n * in_dim)
        .map(|i| if tied { salt } else { salt + 0.1 * (i % 7) as f32 })
        .collect();
    (adj, feats)
}

/// Packed `embed_batch` rows equal each graph's solo `embed` output bit
/// for bit, including graphs whose sort keys are all tied and graphs
/// smaller than `k` (zero-padded by SortPooling).
#[test]
fn encoder_embed_is_bit_identical_batched_vs_single() {
    let in_dim = 3;
    let mut params = Params::new();
    let mut rng = init::rng(42);
    let model = Dgcnn::new(&mut params, "d", small_cfg(in_dim), &mut rng);

    // Mixed population: tied keys, distinct keys, fewer nodes than k,
    // more nodes than k.
    let graphs: Vec<(SparseMatrix, Vec<f32>)> = vec![
        ring(4, in_dim, true, 0.5), // n < k, all keys tied
        ring(9, in_dim, false, -0.25),
        ring(6, in_dim, true, -1.0), // ties again, different values
        ring(12, in_dim, false, 2.0), // n > k
    ];

    // Solo embeddings.
    let mut solo: Vec<Vec<u32>> = Vec::new();
    for (adj, feats) in &graphs {
        let n = feats.len() / in_dim;
        let mut tape = Tape::new(&params);
        let x = tape.input(feats.clone(), n, in_dim);
        let e = model.embed(&mut tape, adj, x);
        solo.push(tape.data(e).iter().map(|v| v.to_bits()).collect());
    }

    // One packed pass.
    let adjs: Vec<&SparseMatrix> = graphs.iter().map(|(a, _)| a).collect();
    let bd = SparseMatrix::block_diag(&adjs);
    let mut packed = Vec::new();
    let mut offsets = vec![0usize];
    for (_, feats) in &graphs {
        packed.extend_from_slice(feats);
        offsets.push(offsets[offsets.len() - 1] + feats.len() / in_dim);
    }
    let total_n = *offsets.last().unwrap();
    let mut tape = Tape::new(&params);
    let x = tape.input(packed, total_n, in_dim);
    let e = model.embed_batch(&mut tape, &bd, x, &offsets);
    let (rows, width) = tape.shape(e);
    assert_eq!(rows, graphs.len());

    for (g, want) in solo.iter().enumerate() {
        let got: Vec<u32> =
            tape.data(e)[g * width..(g + 1) * width].iter().map(|v| v.to_bits()).collect();
        assert_eq!(&got, want, "graph {g}: batched embedding row differs from solo embed");
    }
}

/// Embedding rows depend only on their own graph: reordering or
/// re-grouping the batch must not change any row's bits.
#[test]
fn encoder_embed_rows_are_permutation_invariant() {
    let in_dim = 2;
    let mut params = Params::new();
    let mut rng = init::rng(7);
    let model = Dgcnn::new(&mut params, "d", small_cfg(in_dim), &mut rng);
    let graphs = [ring(5, in_dim, false, 0.0), ring(8, in_dim, true, 1.5), ring(3, in_dim, false, -0.5)];

    let embed_order = |params: &Params, order: &[usize]| -> Vec<Vec<u32>> {
        let adjs: Vec<&SparseMatrix> = order.iter().map(|&i| &graphs[i].0).collect();
        let bd = SparseMatrix::block_diag(&adjs);
        let mut packed = Vec::new();
        let mut offsets = vec![0usize];
        for &i in order {
            packed.extend_from_slice(&graphs[i].1);
            offsets.push(offsets[offsets.len() - 1] + graphs[i].1.len() / in_dim);
        }
        let total_n = *offsets.last().unwrap();
        let mut tape = Tape::new(params);
        let x = tape.input(packed, total_n, in_dim);
        let e = model.embed_batch(&mut tape, &bd, x, &offsets);
        let (_, width) = tape.shape(e);
        (0..order.len())
            .map(|g| tape.data(e)[g * width..(g + 1) * width].iter().map(|v| v.to_bits()).collect())
            .collect()
    };

    let fwd = embed_order(&params, &[0, 1, 2]);
    let rev = embed_order(&params, &[2, 1, 0]);
    for g in 0..3 {
        assert_eq!(fwd[g], rev[2 - g], "row for graph {g} changed with batch order");
    }
}

/// Full-pipeline check on a real corpus: a trained model's batched
/// predictions match per-sample predictions across the whole test split
/// for several batch widths (including widths that leave a ragged tail).
#[test]
fn trained_model_predictions_match_across_test_split() {
    let ds = build_corpus(&CorpusConfig {
        seeds: vec![1],
        opt_levels: vec![mvgnn::ir::transform::OptLevel::O0],
        per_class: Some(12),
        test_fraction: 0.3,
        suite: None,
        inst2vec: Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 2 },
        sample: Default::default(),
        seed: 0xfeed,
        label_noise: 0.0,
        static_features: false,
    });
    let probe = &ds.train[0].sample;
    let mut model = MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab));
    train(
        &mut model,
        &ds.train,
        &TrainConfig { epochs: 1, batch_size: 4, ..TrainConfig::default() },
    )
    .expect("training failed");

    let samples: Vec<&mvgnn::embed::GraphSample> =
        ds.train.iter().chain(ds.test.iter()).map(|s| &s.sample).collect();
    let single: Vec<usize> = samples.iter().map(|s| model.predict(s)).collect();
    for width in [1usize, 3, 32] {
        let batched: Vec<usize> =
            samples.chunks(width).flat_map(|c| model.predict_batch(c)).collect();
        assert_eq!(single, batched, "predictions diverged at batch width {width}");
    }

    // The checked (NaN-guarded) path goes through the same packed
    // forward; its per-view verdicts must agree with batch-of-one too.
    let checked_single: Vec<_> = samples.iter().map(|s| model.predict_checked(s)).collect();
    let checked_batched: Vec<_> =
        samples.chunks(5).flat_map(|c| model.predict_checked_batch(c)).collect();
    assert_eq!(checked_single, checked_batched);

    // Batching must be a pure throughput change: one packed batch of
    // everything equals per-sample, bit-for-bit at the prediction level.
    let all_at_once = model.predict_batch(&samples);
    assert_eq!(single, all_at_once);
}
