//! Soundness of the static tool baselines: a static "Parallel" verdict
//! must never contradict the dynamic profiler on a loop the profiler can
//! fully witness (static analysis is allowed to be *incomplete* — extra
//! NotParallel — but never unsound).

use mvgnn::baselines::{autopar_like, pluto_like};
use mvgnn::dataset::{build_kernel, generate_suite, KernelKind};
use mvgnn::ir::Module;
use mvgnn::profiler::{classify_loop, profile_module};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn static_parallel_verdicts_are_sound_on_all_templates() {
    for kind in KernelKind::ALL {
        for seed in [1u64, 9, 77] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = Module::new("t");
            let (f, loops) = build_kernel(&mut m, kind, 0, 16, &mut rng);
            let res = profile_module(&m, f, &[]).expect("runs");
            for (l, pattern) in &loops {
                // Trace-limited templates are exactly the loops where the
                // trace cannot refute the static analyser either; skip.
                if kind.trace_limited() {
                    continue;
                }
                let dynamic_ok = classify_loop(&m, f, *l, &res.deps).is_parallelizable();
                let truth = pattern.is_parallelizable();
                for (tool, verdict) in [
                    ("pluto", pluto_like(&m, f, *l)),
                    ("autopar", autopar_like(&m, f, *l)),
                ] {
                    if verdict.label() == 1 {
                        assert!(
                            truth && dynamic_ok,
                            "{tool} UNSOUND on {kind:?} loop {l:?} (seed {seed}): \
                             claims parallel, ground truth {pattern:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn static_tools_sound_across_generated_suites() {
    // Whole-suite sweep at one seed: no static tool may green-light a
    // genuinely serial loop.
    for app in generate_suite(None, 23) {
        for ((f, l, pattern), kind) in app.loops.iter().zip(&app.loop_kinds) {
            if kind.trace_limited() {
                continue;
            }
            if !pattern.is_parallelizable() {
                assert_eq!(
                    pluto_like(&app.module, *f, *l).label(),
                    0,
                    "{} {kind:?} loop {l:?}: Pluto must reject serial loops",
                    app.spec.name
                );
                assert_eq!(
                    autopar_like(&app.module, *f, *l).label(),
                    0,
                    "{} {kind:?} loop {l:?}: AutoPar must reject serial loops",
                    app.spec.name
                );
            }
        }
    }
}
