//! Concurrent-engine parity: the [`InferenceEngine`] must produce
//! bit-identical logits and identical predictions at every thread count,
//! and match the sequential batched path exactly.
//!
//! Determinism hangs on the engine's chunking contract — batch boundaries
//! are fixed by `batch_size` before dispatch, so the thread count decides
//! only which worker computes a chunk, never which rows it holds or the
//! f32 summation order inside it.

use mvgnn::core::engine::{EngineConfig, InferenceEngine};
use mvgnn::core::model::{MvGnn, MvGnnConfig};
use mvgnn::core::trainer::{train, TrainConfig};
use mvgnn::dataset::{build_corpus, CorpusConfig};
use mvgnn::embed::Inst2VecConfig;
use std::sync::Arc;

fn trained_model_and_split() -> (Arc<MvGnn>, mvgnn::dataset::Dataset) {
    let ds = build_corpus(&CorpusConfig {
        seeds: vec![1],
        opt_levels: vec![mvgnn::ir::transform::OptLevel::O0],
        per_class: Some(12),
        test_fraction: 0.3,
        suite: None,
        inst2vec: Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 2 },
        sample: Default::default(),
        seed: 0xc0de,
        label_noise: 0.0,
        static_features: false,
    });
    let probe = &ds.train[0].sample;
    let mut model = MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab));
    train(
        &mut model,
        &ds.train,
        &TrainConfig { epochs: 1, batch_size: 4, ..TrainConfig::default() },
    )
    .expect("training failed");
    (Arc::new(model), ds)
}

/// The same eval split through the engine at 1, 2, and 8 threads:
/// logits bit-identical and predictions equal to the sequential path.
#[test]
fn engine_outputs_are_bit_identical_across_thread_counts() {
    let (model, ds) = trained_model_and_split();
    let samples: Vec<&mvgnn::embed::GraphSample> =
        ds.test.iter().map(|s| &s.sample).collect();
    assert!(samples.len() >= 8, "split too small to exercise multiple chunks");

    const BATCH: usize = 4;
    let seq_preds: Vec<usize> =
        samples.chunks(BATCH).flat_map(|c| model.predict_batch(c)).collect();
    let seq_logits: Vec<Vec<u32>> = samples
        .chunks(BATCH)
        .flat_map(|c| model.logits_batch(c))
        .map(|row| row.iter().map(|x| x.to_bits()).collect())
        .collect();

    for threads in [1usize, 2, 8] {
        let engine = InferenceEngine::new(
            Arc::clone(&model),
            EngineConfig { threads, batch_size: BATCH },
        );
        assert_eq!(
            engine.predict_stream(&samples),
            seq_preds,
            "predictions diverged at {threads} threads"
        );
        let logits: Vec<Vec<u32>> = engine
            .logits_stream(&samples)
            .into_iter()
            .map(|row| row.iter().map(|x| x.to_bits()).collect())
            .collect();
        assert_eq!(logits, seq_logits, "logits not bit-identical at {threads} threads");
    }
}

/// The checked (NaN-guarded) stream agrees with the sequential checked
/// path at every thread count.
#[test]
fn engine_checked_stream_matches_sequential() {
    let (model, ds) = trained_model_and_split();
    let samples: Vec<&mvgnn::embed::GraphSample> =
        ds.test.iter().map(|s| &s.sample).collect();
    let reference: Vec<_> = samples.iter().map(|s| model.predict_checked(s)).collect();
    for threads in [1usize, 2, 8] {
        let engine = InferenceEngine::new(
            Arc::clone(&model),
            EngineConfig { threads, batch_size: 3 },
        );
        assert_eq!(
            engine.predict_checked_stream(&samples),
            reference,
            "checked stream diverged at {threads} threads"
        );
    }
}

/// `predict_batch` is callable through a shared `Arc<MvGnn>` from many
/// threads at once, each thread getting the sequential answer.
#[test]
fn shared_model_serves_raw_predict_batch_from_many_threads() {
    let (model, ds) = trained_model_and_split();
    let samples: Vec<&mvgnn::embed::GraphSample> =
        ds.test.iter().map(|s| &s.sample).collect();
    let expected = model.predict_batch(&samples);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let model = Arc::clone(&model);
                let samples = &samples;
                s.spawn(move || model.predict_batch(samples))
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(preds) => assert_eq!(preds, expected),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
}
