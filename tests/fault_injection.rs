//! Fault-injection harness: every recovery path of the fault-tolerant
//! pipeline is driven end-to-end by a deterministic, seed-keyed
//! [`FaultPlan`]. None of these scenarios may panic — faults must surface
//! as typed errors, degraded per-loop predictions, or clean rollbacks.

use mvgnn::core::checkpoint::{decode_checkpoint, encode_checkpoint, Checkpoint};
use mvgnn::core::infer::{classify_module, PredictionSource};
use mvgnn::core::model::{MvGnn, MvGnnConfig};
use mvgnn::core::trainer::{train, EpochStats, TrainConfig};
use mvgnn::core::{FaultPlan, MvGnnError};
use mvgnn::dataset::{build_corpus, CorpusConfig, ShardError, ShardReader, Suite};
use mvgnn::embed::{build_sample, Inst2Vec, Inst2VecConfig, SampleConfig};
use mvgnn::ir::interp::InterpError;
use mvgnn::ir::module::FuncId;
use mvgnn::ir::Module;
use mvgnn::lang::compile;
use mvgnn::peg::{build_peg, loop_subpeg};
use mvgnn::profiler::{build_cus, loop_features, profile_module_resilient};

const PROGRAM: &str = r#"
array a[48]: f64;
array b[48]: f64;
array sum[1]: f64;

fn main() {
    for i in 0..48 {
        b[i] = a[i] * a[i] + 1.0;
    }
    for i in 0..48 {
        sum[0] = sum[0] + b[i];
    }
    for i in 1..48 {
        a[i] = a[i - 1] * 0.5;
    }
}
"#;

fn compiled() -> (Module, FuncId) {
    let module = compile(PROGRAM).expect("the reference program compiles");
    let entry = module.func_by_name("main").expect("has main");
    (module, entry)
}

/// Model + embedding sized for the reference program.
fn model_for(module: &Module, entry: FuncId) -> (Inst2Vec, MvGnn) {
    let i2v = Inst2Vec::train(
        &[module],
        &Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 1 },
    );
    let partial = profile_module_resilient(module, entry, &[], None, None);
    assert!(partial.is_complete());
    let cus = build_cus(module);
    let peg = build_peg(module, &cus, &partial.deps);
    let info = &module.funcs[entry.index()].loops[0];
    let feats = loop_features(module, entry, info.id, &partial.deps, &partial.loops[&(entry, info.id)]);
    let sub = loop_subpeg(&peg, module, &cus, entry, info.id);
    let probe = build_sample(&sub, &i2v, &feats, &SampleConfig::default(), None);
    (i2v, MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab)))
}

fn tiny_dataset() -> mvgnn::dataset::Dataset {
    build_corpus(&CorpusConfig {
        seeds: vec![3],
        opt_levels: vec![mvgnn::ir::transform::OptLevel::O0],
        per_class: Some(20),
        test_fraction: 0.25,
        suite: Some(Suite::PolyBench),
        inst2vec: Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 3 },
        sample: Default::default(),
        seed: 5,
        label_noise: 0.0,
        static_features: false,
    })
}

/// Injector 1 — truncated trace: a starved step budget must degrade each
/// loop (single-view or conservative) without shrinking the batch.
#[test]
fn truncated_trace_degrades_per_loop() {
    let (module, entry) = compiled();
    let (i2v, model) = model_for(&module, entry);
    let budget = FaultPlan::new(21).starved_step_budget();
    let reports =
        classify_module(&model, &module, entry, &i2v, &SampleConfig::default(), Some(budget), None);
    assert_eq!(reports.len(), 3, "all loops must be reported");
    for r in &reports {
        assert_ne!(r.source, PredictionSource::Multi, "{r:?}");
        let d = r.diagnostic.as_deref().expect("degraded loops carry a diagnostic");
        assert!(d.contains("trunc"), "{d}");
    }
    // The same budget on the healthy path yields full multi-view output.
    let healthy =
        classify_module(&model, &module, entry, &i2v, &SampleConfig::default(), None, None);
    assert!(healthy.iter().all(|r| r.source == PredictionSource::Multi));
}

/// Injector 1b — call-depth exhaustion propagates the same way.
#[test]
fn call_depth_fault_is_salvaged_by_the_profiler() {
    use mvgnn::ir::inst::BinOp;
    use mvgnn::ir::types::Ty;
    use mvgnn::ir::FunctionBuilder;
    let mut m = Module::new("deep");
    let a = m.add_array("a", Ty::I64, 8);
    let callee = {
        let mut b = FunctionBuilder::new(&mut m, "callee", 0);
        let z = b.const_i64(0);
        let v = b.load(a, z);
        b.ret(Some(v));
        b.finish()
    };
    let mut b = FunctionBuilder::new(&mut m, "main", 0);
    let lo = b.const_i64(0);
    let hi = b.const_i64(8);
    let st = b.const_i64(1);
    let l = b.for_loop(lo, hi, st, |b, i| {
        let x = b.bin(BinOp::Add, i, i);
        b.store(a, i, x);
    });
    let _ = b.call(callee, &[]);
    let f = b.finish();

    let partial = profile_module_resilient(&m, f, &[], None, Some(1));
    assert!(matches!(partial.error, Some(InterpError::DepthLimit(_))), "{:?}", partial.error);
    // The loop that ran before the faulting call is fully accounted for.
    assert_eq!(partial.loops[&(f, l)].iterations, 8);
}

/// Injector 2 — NaN-poisoned weights: training detects the divergence,
/// rolls back to the last good snapshot, and still completes; inference
/// on a model poisoned beyond repair refuses to trust any view.
#[test]
fn poisoned_weights_recover_in_training_and_degrade_in_inference() {
    let ds = tiny_dataset();
    let probe = &ds.train[0].sample;
    let mut model = MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab));
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 8,
        fault: Some(FaultPlan::new(13).poison_weights_at(1)),
        ..Default::default()
    };
    let stats = train(&mut model, &ds.train, &cfg).expect("rollback must recover");
    assert_eq!(stats.len(), 3);
    assert!(stats.iter().all(|e| e.loss.is_finite()));

    // Inference side: poison every tensor and classify.
    let (module, entry) = compiled();
    let (i2v, mut infer_model) = model_for(&module, entry);
    FaultPlan::new(13).poison_params(&mut infer_model.params, 64);
    let reports = classify_module(
        &infer_model,
        &module,
        entry,
        &i2v,
        &SampleConfig::default(),
        None,
        None,
    );
    assert_eq!(reports.len(), 3, "poisoned model must not abort the batch");
    assert!(reports.iter().all(|r| r.source != PredictionSource::Multi));
}

/// Injector 3 — corrupted checkpoint bytes: every seed's bit flips are
/// rejected with a typed checkpoint error, and resume-from-corrupt fails
/// cleanly instead of panicking or training from garbage.
#[test]
fn corrupted_checkpoints_are_rejected() {
    let cp = Checkpoint {
        epoch: 2,
        lr: 1e-3,
        retries: 0,
        calibration: Some(1.25),
        stats: vec![EpochStats { epoch: 2, loss: 0.5, accuracy: 0.7 }],
        weights: (0u32..600).flat_map(|x| x.to_le_bytes()).collect(),
    };
    let clean = encode_checkpoint(&cp);
    assert_eq!(decode_checkpoint(&clean).unwrap(), cp);
    for seed in 0..32u64 {
        let mut bytes = clean.clone();
        FaultPlan::new(seed).corrupt_bytes(&mut bytes, 3);
        if bytes == clean {
            continue; // bit flips cancelled out — nothing injected
        }
        match decode_checkpoint(&bytes) {
            Err(MvGnnError::Checkpoint(_)) => {}
            Err(other) => panic!("seed {seed}: wrong error class {other}"),
            Ok(decoded) => panic!("seed {seed}: corruption accepted: {decoded:?}"),
        }
    }

    // End-to-end: resuming training from a corrupt file is a typed error.
    let dir = std::env::temp_dir().join("mvgnn_fault_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corrupt.ckpt");
    let mut bytes = clean;
    FaultPlan::new(5).corrupt_bytes(&mut bytes, 8);
    std::fs::write(&path, &bytes).unwrap();
    let ds = tiny_dataset();
    let probe = &ds.train[0].sample;
    let mut model = MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab));
    let cfg = TrainConfig { resume_from: Some(path), epochs: 1, ..Default::default() };
    match train(&mut model, &ds.train, &cfg) {
        Err(MvGnnError::Checkpoint(_)) | Err(MvGnnError::Persist(_)) => {}
        other => panic!("expected a checkpoint rejection, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Injector 4 — malformed source: truncated and mangled programs must
/// come back as compile errors, never panics.
#[test]
fn malformed_source_yields_typed_compile_errors() {
    for seed in 0..64u64 {
        let plan = FaultPlan::new(seed);
        let frac = (seed as f64 % 17.0) / 17.0;
        let truncated = plan.truncate_source(PROGRAM, frac);
        if let Err(e) = compile(&truncated) {
            let _ = MvGnnError::from(e).to_string(); // renders without panicking
        }
        let mangled = plan.mangle_source(PROGRAM);
        if let Err(e) = compile(&mangled) {
            let _ = MvGnnError::from(e).to_string();
        }
    }
}

/// Injector 5 — poisoned params behind the service: a stream of requests
/// through a [`Server`](mvgnn::serve::Server) whose weights are NaN-
/// poisoned must come back as typed degraded classifications — every
/// request answered, zero panics caught at the dispatch boundary.
#[test]
fn poisoned_params_through_the_service_degrade_typed() {
    use mvgnn::serve::{Deadline, ServeConfig, Server};
    use std::sync::Arc;

    let ds = tiny_dataset();
    let probe = &ds.train[0].sample;
    let mut model = MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab));
    FaultPlan::new(17).poison_params(&mut model.params, 64);
    let server = Server::start(
        Arc::new(model),
        ServeConfig { max_batch: 4, ..Default::default() },
    )
    .expect("valid config");

    // Open-loop stream: everything is in flight at once, so the poison
    // hits mid-stream batches, not one isolated request.
    let tickets: Vec<_> = ds
        .test
        .iter()
        .map(|s| {
            server
                .submit(Arc::new(s.sample.clone()), Deadline::none())
                .expect("admitted")
        })
        .collect();
    assert!(!tickets.is_empty());
    for t in tickets {
        let c = t.wait().expect("typed answer, not a panic");
        assert_ne!(c.source, PredictionSource::Multi, "poison trusted: {c:?}");
        assert!(c.diagnostic.is_some(), "degraded answers carry a diagnostic");
    }
    assert_eq!(server.stats().panics_caught, 0);
    server.shutdown();
}

/// Injector 6 — malformed and starved sources through the service
/// frontend: truncations, manglings, and starved interpreter budgets must
/// surface as typed compile errors or degraded reports, never as panics
/// or `Internal` faults.
#[test]
fn malformed_sources_through_the_service_are_typed() {
    use mvgnn::serve::{Deadline, Frontend, ServeConfig, ServeError, Server};
    use std::sync::Arc;

    let (module, entry) = compiled();
    let (i2v, model) = model_for(&module, entry);
    let _ = entry;
    let server = Server::start_with_frontend(
        Arc::new(model),
        Frontend {
            inst2vec: i2v,
            sample_cfg: SampleConfig::default(),
            cache_capacity: 64,
            max_steps: None,
            max_call_depth: None,
            cascade: mvgnn::core::CascadeConfig::default(),
        },
        ServeConfig::default(),
    )
    .expect("valid config");

    for seed in 0..24u64 {
        let plan = FaultPlan::new(seed);
        let frac = (seed as f64 % 17.0) / 17.0;
        for src in [plan.truncate_source(PROGRAM, frac), plan.mangle_source(PROGRAM)] {
            match server.classify_source(&src, Deadline::none(), None) {
                Ok(mc) => assert!(mc.reports.len() <= 3),
                Err(ServeError::Compile(_)) | Err(ServeError::Rejected(_)) => {}
                Err(other) => panic!("seed {seed}: untyped service fault {other:?}"),
            }
        }
    }

    // Starved interpreter budget: the healthy program still answers, with
    // every loop degraded typed.
    let budget = FaultPlan::new(21).starved_step_budget();
    let mc = server
        .classify_source(PROGRAM, Deadline::none(), Some(budget))
        .expect("starvation degrades, it does not fail");
    assert_eq!(mc.reports.len(), 3);
    assert!(mc.reports.iter().all(|r| r.source != PredictionSource::Multi));
    assert_eq!(server.stats().panics_caught, 0);
}

/// Injector 7 — degenerate configurations are typed errors at
/// construction, for both the engine and the service wrapped around it.
#[test]
fn degenerate_configs_are_typed_errors() {
    use mvgnn::core::{EngineConfig, InferenceEngine};
    use mvgnn::serve::{ServeConfig, Server};
    use std::sync::Arc;

    let ds = tiny_dataset();
    let probe = &ds.train[0].sample;
    let model = Arc::new(MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab)));
    for cfg in [
        EngineConfig { threads: 0, batch_size: 8 },
        EngineConfig { threads: 1, batch_size: 0 },
    ] {
        match InferenceEngine::try_new(Arc::clone(&model), cfg) {
            Err(MvGnnError::Config(_)) => {}
            Ok(_) => panic!("degenerate engine config accepted: {cfg:?}"),
            Err(other) => panic!("wrong error class: {other}"),
        }
    }
    match Server::start(model, ServeConfig { max_batch: 0, ..Default::default() }) {
        Err(MvGnnError::Config(_)) => {}
        Ok(_) => panic!("degenerate serve config accepted"),
        Err(other) => panic!("wrong error class: {other}"),
    }
}

// ---------------------------------------------------------------------
// MVSH shard corruption injectors
// ---------------------------------------------------------------------

/// A two-sample MVSH shard on disk, for the corruption injectors below.
fn written_shard(dir: &std::path::Path) -> std::path::PathBuf {
    use mvgnn::dataset::{fit_inst2vec, write_shard};
    std::fs::create_dir_all(dir).unwrap();
    let cfg = CorpusConfig {
        seeds: vec![3],
        opt_levels: vec![mvgnn::ir::transform::OptLevel::O0],
        suite: Some(Suite::Bots),
        inst2vec: Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 3 },
        label_noise: 0.0,
        ..CorpusConfig::default()
    };
    let emb = fit_inst2vec(&cfg);
    write_shard(dir, &cfg, &emb, 0, 1).expect("shard writes").0
}

fn read_all(path: &std::path::Path) -> Result<Vec<mvgnn::dataset::LabeledSample>, ShardError> {
    ShardReader::open(path)?.collect()
}

/// Injector 8 — every way an MVSH shard can rot on disk surfaces as a
/// typed [`ShardError`]; no corruption shape panics or yields samples.
#[test]
fn corrupt_shards_are_typed_errors_never_panics() {
    use mvgnn::dataset::format::HEADER_LEN;

    let dir = std::env::temp_dir().join("mvgnn_fault_mvsh_test");
    let shard = written_shard(&dir);
    let pristine = std::fs::read(&shard).unwrap();
    let scratch = dir.join("corrupt.mvsh");

    // Baseline sanity: the untouched shard reads back fully.
    let clean = read_all(&shard).expect("pristine shard reads");
    assert!(!clean.is_empty());

    // Wrong magic.
    let mut bytes = pristine.clone();
    bytes[0..4].copy_from_slice(b"NOPE");
    std::fs::write(&scratch, &bytes).unwrap();
    assert!(matches!(read_all(&scratch), Err(ShardError::BadMagic)));

    // Wrong version header.
    let mut bytes = pristine.clone();
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&scratch, &bytes).unwrap();
    assert!(matches!(read_all(&scratch), Err(ShardError::BadVersion(99))));

    // Truncations: inside the header, inside a record frame, and inside
    // a record payload must all be Truncated (a clean cut exactly at a
    // record boundary is a count mismatch instead — checked below).
    for cut in [HEADER_LEN / 2, HEADER_LEN + 5, pristine.len() - 7, pristine.len() / 2] {
        std::fs::write(&scratch, &pristine[..cut]).unwrap();
        match read_all(&scratch) {
            Err(ShardError::Truncated) | Err(ShardError::CountMismatch { .. }) => {}
            other => panic!("cut at {cut}: expected truncation, got {other:?}"),
        }
    }
    // Exhaustive prefix scan (sampled stride): no prefix length panics
    // or yields a full read.
    for cut in (0..pristine.len() - 1).step_by(41) {
        std::fs::write(&scratch, &pristine[..cut]).unwrap();
        assert!(read_all(&scratch).is_err(), "prefix {cut} must not read back fully");
    }

    // Flipped payload byte: checksum failure naming the record.
    let mut bytes = pristine.clone();
    let last = bytes.len() - 9;
    bytes[last] ^= 0x01;
    std::fs::write(&scratch, &bytes).unwrap();
    match read_all(&scratch) {
        Err(ShardError::Checksum { record }) => {
            assert_eq!(record as usize, clean.len() - 1, "last record is the corrupt one")
        }
        other => panic!("expected checksum error, got {other:?}"),
    }

    // Header record count too large: clean EOF before the declared
    // count is a CountMismatch carrying both numbers.
    let mut bytes = pristine.clone();
    let declared = clean.len() as u64 + 3;
    bytes[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&declared.to_le_bytes());
    std::fs::write(&scratch, &bytes).unwrap();
    match read_all(&scratch) {
        Err(ShardError::CountMismatch { expected, got }) => {
            assert_eq!(expected, declared);
            assert_eq!(got as usize, clean.len());
        }
        other => panic!("expected count mismatch, got {other:?}"),
    }

    // Trailing garbage past the declared count is also a CountMismatch.
    let mut bytes = pristine.clone();
    bytes.extend_from_slice(b"junk after the last record");
    std::fs::write(&scratch, &bytes).unwrap();
    assert!(matches!(read_all(&scratch), Err(ShardError::CountMismatch { .. })));

    // The reader fuses after a failure: next() after Err is None.
    let mut bytes = pristine.clone();
    bytes[HEADER_LEN + 13] ^= 0xff;
    std::fs::write(&scratch, &bytes).unwrap();
    let mut reader = ShardReader::open(&scratch).unwrap();
    let mut saw_err = false;
    for r in reader.by_ref() {
        if r.is_err() {
            saw_err = true;
        }
    }
    assert!(saw_err, "corruption must surface through the iterator");
    assert!(reader.next().is_none(), "a failed reader stays finished");

    std::fs::remove_dir_all(&dir).ok();
}

/// Injector 9 — a corrupt shard fed to the streaming trainer is a typed
/// [`MvGnnError::Shard`]; the model keeps its prior weights.
#[test]
fn streaming_over_corrupt_shard_keeps_weights() {
    use mvgnn::core::streaming::{train_streaming, StreamConfig};

    let dir = std::env::temp_dir().join("mvgnn_fault_stream_mvsh_test");
    let shard = written_shard(&dir);
    let first = ShardReader::open(&shard).unwrap().next().unwrap().unwrap();
    let mut model =
        MvGnn::new(MvGnnConfig::small(first.sample.node_dim, first.sample.aw_vocab));
    let before = model.save();

    let mut bytes = std::fs::read(&shard).unwrap();
    let at = bytes.len() / 2;
    bytes[at] ^= 0xff;
    std::fs::write(&shard, &bytes).unwrap();

    let cfg = TrainConfig { epochs: 2, batch_size: 4, ..Default::default() };
    let err = train_streaming(&mut model, &[shard], &cfg, &StreamConfig::default())
        .expect_err("corrupt shard must fail typed");
    assert!(matches!(err, MvGnnError::Shard(_)), "{err}");
    assert_eq!(model.save(), before, "failed streaming must not move the weights");

    std::fs::remove_dir_all(&dir).ok();
}
