//! Source-language → IR → profiler → suggestion pipeline, end to end.

use mvgnn::core::suggest::{annotate_function, Suggestion};
use mvgnn::ir::interp::{Interpreter, NoTracer};
use mvgnn::ir::types::Value;
use mvgnn::lang::{compile, print_program, parse, tokenize};
use mvgnn::profiler::profile_module;

const KERNELS: &str = r#"
array a[64]: f64;
array b[64]: f64;
array c[64]: f64;
array sum[1]: f64;
array hist[8]: i64;
array key[64]: i64;

fn saxpy() {
    for i in 0..64 {
        c[i] = 2.5 * a[i] + b[i];
    }
}

fn total() {
    for i in 0..64 {
        sum[0] = sum[0] + c[i];
    }
}

fn histogram() {
    for i in 0..64 {
        key[i] = i % 8;
    }
    for i in 0..64 {
        hist[key[i]] = hist[key[i]] + 1;
    }
}

fn smooth_in_place() {
    for i in 1..63 {
        a[i] = a[i - 1] * 0.5 + a[i + 1] * 0.5;
    }
}

fn main() {
    saxpy();
    total();
    histogram();
    smooth_in_place();
}
"#;

#[test]
fn mini_language_kernels_get_correct_suggestions() {
    let module = compile(KERNELS).expect("compiles");
    let entry = module.func_by_name("main").unwrap();
    let result = profile_module(&module, entry, &[]).expect("runs");

    let expect: &[(&str, &[&str])] = &[
        ("saxpy", &["#pragma omp parallel for"]),
        ("total", &["reduction(+:sum)"]),
        ("histogram", &["#pragma omp parallel for", "reduction(+:hist)"]),
        ("smooth_in_place", &[""]), // sequential
    ];
    for (fname, wants) in expect {
        let f = module.func_by_name(fname).unwrap();
        let anns = annotate_function(&module, f, &result.deps);
        assert_eq!(anns.len(), wants.len(), "{fname}: loop count");
        for ((_, l, suggestion), want) in anns.iter().zip(*wants) {
            match suggestion {
                Suggestion::Sequential(_) => {
                    assert!(want.is_empty(), "{fname} loop {l:?} should be parallel")
                }
                s => assert!(
                    s.pragma().contains(want),
                    "{fname} loop {l:?}: `{}` should contain `{want}`",
                    s.pragma()
                ),
            }
        }
    }
}

#[test]
fn compiled_program_executes_correctly() {
    let src = "array a[10]: i64;
        fn main() {
            let acc = 0;
            for i in 0..10 { a[i] = i * i; }
            for i in 0..10 { acc = acc + a[i]; }
            return acc;
        }";
    let m = compile(src).unwrap();
    let f = m.func_by_name("main").unwrap();
    let (ret, stats) = Interpreter::new(&m).run(f, &[], &mut NoTracer).unwrap();
    assert_eq!(ret, Some(Value::I64(285))); // Σ i² for i in 0..10
    assert!(stats.loads >= 10 && stats.stores >= 10);
}

#[test]
fn printer_output_recompiles_to_same_behaviour() {
    let module1 = compile(KERNELS).unwrap();
    let ast = parse(&tokenize(KERNELS).unwrap()).unwrap();
    let printed = print_program(&ast);
    let module2 = compile(&printed).expect("printed source recompiles");
    let f1 = module1.func_by_name("main").unwrap();
    let f2 = module2.func_by_name("main").unwrap();
    let r1 = Interpreter::new(&module1).run(f1, &[], &mut NoTracer).unwrap();
    let r2 = Interpreter::new(&module2).run(f2, &[], &mut NoTracer).unwrap();
    assert_eq!(r1.0, r2.0);
    assert_eq!(r1.1.loads, r2.1.loads);
    assert_eq!(r1.1.stores, r2.1.stores);
}

#[test]
fn frontend_loops_feed_the_model_sample_path() {
    use mvgnn::embed::{build_sample, Inst2Vec, Inst2VecConfig, SampleConfig};
    use mvgnn::peg::{build_peg, loop_subpeg};
    use mvgnn::profiler::{build_cus, loop_features};

    let module = compile(KERNELS).unwrap();
    let entry = module.func_by_name("main").unwrap();
    let result = profile_module(&module, entry, &[]).unwrap();
    let cus = build_cus(&module);
    let peg = build_peg(&module, &cus, &result.deps);
    let i2v = Inst2Vec::train(
        &[&module],
        &Inst2VecConfig { dim: 12, epochs: 1, negatives: 2, lr: 0.05, seed: 1 },
    );
    let mut samples = 0;
    for (func, l) in module.all_loops() {
        let sub = loop_subpeg(&peg, &module, &cus, func, l);
        let runtime = result.loops.get(&(func, l)).copied().unwrap_or_default();
        let feats = loop_features(&module, func, l, &result.deps, &runtime);
        let s = build_sample(&sub, &i2v, &feats, &SampleConfig::default(), None);
        assert!(s.n > 0);
        assert_eq!(s.node_feats.len(), s.n * s.node_dim);
        samples += 1;
    }
    assert_eq!(samples, 5, "five loops across the kernels");
}
