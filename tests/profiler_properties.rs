//! Property-based tests of the dependence profiler itself: determinism,
//! invariance to semantics-preserving module transformations, and
//! agreement between dependence structure and observable behaviour.

use mvgnn::ir::inst::BinOp;
use mvgnn::ir::transform::{optimize, OptLevel};
use mvgnn::ir::types::Ty;
use mvgnn::ir::{FunctionBuilder, Module};
use mvgnn::profiler::{classify_loop, loop_features, profile_module, DepKind};
use proptest::prelude::*;

/// A parameterised two-array kernel: `dst[i] = f(src[i ± offsets…])` with
/// optional in-place aliasing — the dependence structure is predictable
/// from the parameters, so the profiler's output can be checked exactly.
fn offset_kernel(
    offsets: &[i64],
    in_place: bool,
    n: i64,
) -> (Module, mvgnn::ir::module::FuncId, mvgnn::ir::module::LoopId) {
    let max_off = offsets.iter().map(|o| o.abs()).max().unwrap_or(0);
    let len = (n + 2 * max_off) as usize;
    let mut m = Module::new("prop");
    let src = m.add_array("src", Ty::F64, len);
    let dst = if in_place { src } else { m.add_array("dst", Ty::F64, len) };
    let mut b = FunctionBuilder::new(&mut m, "main", 0);
    let lo = b.const_i64(max_off);
    let hi = b.const_i64(max_off + n);
    let st = b.const_i64(1);
    let off_regs: Vec<_> = offsets.iter().map(|&o| b.const_i64(o)).collect();
    let l = b.for_loop(lo, hi, st, |b, iv| {
        let mut acc = b.const_f64(0.0);
        for off in &off_regs {
            let idx = b.bin(BinOp::Add, iv, *off);
            let x = b.load(src, idx);
            acc = b.bin(BinOp::Add, acc, x);
        }
        b.store(dst, iv, acc);
    });
    let f = b.finish();
    (m, f, l)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Profiling is deterministic: two runs produce identical dependence
    /// graphs and features.
    #[test]
    fn profiling_is_deterministic(
        offsets in proptest::collection::vec(-3i64..=3, 1..4),
        in_place in any::<bool>(),
        n in 4i64..20,
    ) {
        let (m, f, l) = offset_kernel(&offsets, in_place, n);
        let r1 = profile_module(&m, f, &[]).unwrap();
        let r2 = profile_module(&m, f, &[]).unwrap();
        let d1: Vec<_> = r1.deps.iter().cloned().collect();
        let d2: Vec<_> = r2.deps.iter().cloned().collect();
        prop_assert_eq!(d1, d2);
        let f1 = loop_features(&m, f, l, &r1.deps, &r1.loops[&(f, l)]);
        let f2 = loop_features(&m, f, l, &r2.deps, &r2.loops[&(f, l)]);
        prop_assert_eq!(f1, f2);
    }

    /// Out-of-place offset kernels are DOALL regardless of the stencil
    /// shape; in-place kernels are DOALL exactly when every offset is 0
    /// (then it is a pure element-wise rewrite of the same cell, which our
    /// classifier treats as a reduction-free same-iteration access) or,
    /// when any offset is non-zero, they must NOT be DOALL.
    #[test]
    fn in_place_offsets_force_carried_deps(
        offsets in proptest::collection::vec(-3i64..=3, 1..4),
        n in 6i64..20,
    ) {
        let any_nonzero = offsets.iter().any(|&o| o != 0);
        let (m, f, l) = offset_kernel(&offsets, true, n);
        let res = profile_module(&m, f, &[]).unwrap();
        let class = classify_loop(&m, f, l, &res.deps);
        if any_nonzero {
            prop_assert!(
                !class.is_parallelizable(),
                "aliasing stencil with offsets {:?} must not be DOALL: {:?}",
                offsets,
                class
            );
            // And the carried dependence must be visible in the graph.
            prop_assert!(!res.deps.carried_by(f, l).is_empty());
        }
        let (m2, f2, l2) = offset_kernel(&offsets, false, n);
        let res2 = profile_module(&m2, f2, &[]).unwrap();
        prop_assert!(
            classify_loop(&m2, f2, l2, &res2.deps).is_parallelizable(),
            "out-of-place kernel must be parallelisable"
        );
    }

    /// Every optimisation level preserves the loop classification and the
    /// carried/independent split of the dependence graph.
    #[test]
    fn optimisation_preserves_dependence_classification(
        offsets in proptest::collection::vec(-2i64..=2, 1..3),
        in_place in any::<bool>(),
        n in 4i64..16,
    ) {
        let (m, f, l) = offset_kernel(&offsets, in_place, n);
        let base = profile_module(&m, f, &[]).unwrap();
        let base_class = classify_loop(&m, f, l, &base.deps).is_parallelizable();
        for level in OptLevel::ALL {
            let opt = optimize(&m, level);
            let res = profile_module(&opt, f, &[]).unwrap();
            let class = classify_loop(&opt, f, l, &res.deps).is_parallelizable();
            prop_assert_eq!(class, base_class, "{:?} flipped the verdict", level);
        }
    }

    /// Dependence kinds are structurally consistent: a RAW edge's source
    /// is always a store and its sink a load; WAW connects two stores.
    #[test]
    fn dependence_endpoints_match_kinds(
        offsets in proptest::collection::vec(-2i64..=2, 1..3),
        n in 4i64..16,
    ) {
        let (m, f, _) = offset_kernel(&offsets, true, n);
        let res = profile_module(&m, f, &[]).unwrap();
        let is_store = |r: mvgnn::ir::InstRef| {
            matches!(
                m.funcs[r.func.index()].blocks[r.block.index()].insts[r.idx as usize],
                mvgnn::ir::Inst::Store { .. }
            )
        };
        for d in res.deps.iter() {
            match d.kind {
                DepKind::Raw => {
                    prop_assert!(is_store(d.src) && !is_store(d.dst));
                }
                DepKind::War => {
                    prop_assert!(!is_store(d.src) && is_store(d.dst));
                }
                DepKind::Waw => {
                    prop_assert!(is_store(d.src) && is_store(d.dst));
                }
            }
        }
    }
}
