//! Whole-stack determinism: identical seeds must reproduce identical
//! corpora, models and predictions — the property every experiment
//! binary relies on.

use mvgnn::core::model::{MvGnn, MvGnnConfig};
use mvgnn::core::trainer::{train, TrainConfig};
use mvgnn::dataset::{build_corpus, CorpusConfig, Suite};
use mvgnn::embed::Inst2VecConfig;
use mvgnn::ir::transform::OptLevel;

fn cfg() -> CorpusConfig {
    CorpusConfig {
        seeds: vec![4],
        opt_levels: vec![OptLevel::O0],
        per_class: Some(20),
        test_fraction: 0.25,
        suite: Some(Suite::PolyBench),
        inst2vec: Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 6 },
        sample: Default::default(),
        seed: 0xd00d,
        label_noise: 0.0,
        static_features: false,
    }
}

#[test]
fn corpus_is_bit_deterministic() {
    let a = build_corpus(&cfg());
    let b = build_corpus(&cfg());
    assert_eq!(a.train.len(), b.train.len());
    assert_eq!(a.test.len(), b.test.len());
    for (x, y) in a.train.iter().zip(&b.train) {
        assert_eq!(x.base_key, y.base_key);
        assert_eq!(x.label, y.label);
        assert_eq!(x.sample.node_feats, y.sample.node_feats);
        assert_eq!(x.sample.struct_dists, y.sample.struct_dists);
        assert_eq!(x.sample.token_ids, y.sample.token_ids);
    }
}

#[test]
fn serial_training_is_deterministic() {
    let ds = build_corpus(&cfg());
    let probe = &ds.train[0].sample;
    let run = || {
        let mut model = MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab));
        let tc = TrainConfig { epochs: 4, batch_size: 8, parallel: false, ..Default::default() };
        let stats = train(&mut model, &ds.train, &tc).expect("training must succeed");
        let preds: Vec<usize> = ds.test.iter().map(|s| model.predict(&s.sample)).collect();
        (stats, preds)
    };
    let (s1, p1) = run();
    let (s2, p2) = run();
    assert_eq!(p1, p2, "predictions must be bit-identical");
    for (a, b) in s1.iter().zip(&s2) {
        assert_eq!(a.loss, b.loss, "losses must be bit-identical");
        assert_eq!(a.accuracy, b.accuracy);
    }
}

#[test]
fn different_seeds_produce_different_corpora() {
    let a = build_corpus(&cfg());
    let mut c2 = cfg();
    c2.seeds = vec![5];
    let b = build_corpus(&c2);
    let ka: Vec<u64> = a.train.iter().map(|s| s.base_key).collect();
    let kb: Vec<u64> = b.train.iter().map(|s| s.base_key).collect();
    assert_ne!(ka, kb, "different generation seeds must differ");
}
