//! Cascade vs historical-classifier parity.
//!
//! The tiered [`Cascade`] refactor moved the whole classification path —
//! `classify_module`, the engine's batch primitive, the serve
//! micro-batcher — behind one abstraction. These tests pin the contract
//! that made the move safe: the GNN-only cascade reproduces the
//! historical outputs *bit for bit* (raw `f32` logits bits, not merely
//! equal predictions), and turning the oracle tier on changes only the
//! rows the oracle decides — every undecided row is untouched.

use mvgnn::core::cascade::{Cascade, CascadeConfig, DecidedBy};
use mvgnn::core::infer::{classify_module, PredictionSource};
use mvgnn::core::model::{MvGnn, MvGnnConfig};
use mvgnn::core::FaultPlan;
use mvgnn::dataset::{build_corpus, CorpusConfig, Suite};
use mvgnn::embed::{build_sample, GraphSample, Inst2Vec, Inst2VecConfig, SampleConfig};
use mvgnn::ir::types::Ty;
use mvgnn::ir::inst::BinOp;
use mvgnn::ir::module::{FuncId, Module};
use mvgnn::ir::FunctionBuilder;
use mvgnn::peg::{build_peg, loop_subpeg};
use mvgnn::profiler::{build_cus, loop_features, profile_module_resilient};
use mvgnn::tensor::Workspace;

/// Three loops spanning the verdict lattice: a DOALL the oracle proves
/// parallel, a linear recurrence it proves dependent, and an
/// indirect-index write it must leave `Unknown` (the GNN's row).
fn mixed_module() -> (Module, FuncId) {
    let mut m = Module::new("parity");
    let a = m.add_array("a", Ty::F64, 32);
    let out = m.add_array("b", Ty::F64, 32);
    let idx = m.add_array("idx", Ty::I64, 32);
    let mut b = FunctionBuilder::new(&mut m, "main", 0);
    let lo = b.const_i64(0);
    let hi = b.const_i64(32);
    let st = b.const_i64(1);
    b.for_loop(lo, hi, st, |b, i| {
        let x = b.load(a, i);
        let y = b.bin(BinOp::Mul, x, x);
        b.store(out, i, y);
    });
    let one = b.const_i64(1);
    b.for_loop(one, hi, st, |b, i| {
        let p = b.bin(BinOp::Sub, i, one);
        let x = b.load(out, p);
        b.store(out, i, x);
    });
    let v = b.const_f64(1.0);
    b.for_loop(lo, hi, st, |b, i| {
        let j = b.load(idx, i);
        b.store(a, j, v);
    });
    let f = b.finish();
    (m, f)
}

fn setup() -> (Module, FuncId, Inst2Vec, MvGnn) {
    let (m, f) = mixed_module();
    let i2v = Inst2Vec::train(
        &[&m],
        &Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 1 },
    );
    let cfg = SampleConfig::default();
    let partial = profile_module_resilient(&m, f, &[], None, None);
    let cus = build_cus(&m);
    let peg = build_peg(&m, &cus, &partial.deps);
    let l0 = m.funcs[f.index()].loops[0].id;
    let feats = loop_features(&m, f, l0, &partial.deps, &partial.loops[&(f, l0)]);
    let sub = loop_subpeg(&peg, &m, &cus, f, l0);
    let probe = build_sample(&sub, &i2v, &feats, &cfg, None);
    let model = MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab));
    (m, f, i2v, model)
}

/// The oracle tier on, everything else off — the configuration whose
/// GNN rows must be bit-identical to the pure-GNN path.
fn oracle_plus_gnn() -> Cascade {
    Cascade::new(CascadeConfig {
        use_oracle: true,
        confidence_threshold: 0.0,
        use_profiler: false,
        static_features: false,
        ..CascadeConfig::default()
    })
}

#[test]
fn classify_module_is_the_gnn_only_cascade_front() {
    let (m, f, i2v, model) = setup();
    let cfg = SampleConfig::default();
    let front = classify_module(&model, &m, f, &i2v, &cfg, None, None);
    let direct = Cascade::gnn_only().classify_module(&model, &m, f, &i2v, &cfg, None, None);
    assert_eq!(front.len(), 3);
    assert_eq!(front.len(), direct.len());
    for (a, b) in front.iter().zip(&direct) {
        assert_eq!(a.prediction, b.prediction);
        assert_eq!(a.source, b.source);
        assert_eq!(a.diagnostic, b.diagnostic);
        assert_eq!(a.decided_by, DecidedBy::Gnn, "{a:?}");
        assert_eq!(b.decided_by, DecidedBy::Gnn);
        assert!(a.oracle.is_none() && b.oracle.is_none());
    }
}

#[test]
fn oracle_tier_changes_only_the_rows_it_decides() {
    let (m, f, i2v, model) = setup();
    let cfg = SampleConfig::default();
    let base = Cascade::gnn_only().classify_module(&model, &m, f, &i2v, &cfg, None, None);
    let tiered = oracle_plus_gnn().classify_module(&model, &m, f, &i2v, &cfg, None, None);
    assert_eq!(base.len(), tiered.len());
    let mut oracle_rows = 0;
    let mut gnn_rows = 0;
    for (b, t) in base.iter().zip(&tiered) {
        assert_eq!((b.func, b.l), (t.func, t.l), "report order must be loop order");
        match t.decided_by {
            DecidedBy::Oracle => {
                oracle_rows += 1;
                assert_eq!(t.source, PredictionSource::Oracle);
                let report = t.oracle.as_ref().expect("tier-0 rows carry the oracle facts");
                assert!(!report.facts.is_empty() || t.prediction == 1, "{report:?}");
            }
            DecidedBy::Gnn => {
                gnn_rows += 1;
                assert_eq!(b.prediction, t.prediction, "undecided row moved: {t:?}");
                assert_eq!(b.source, t.source);
                assert_eq!(b.diagnostic, t.diagnostic);
                assert!(t.oracle.is_none());
            }
            DecidedBy::Profiler => panic!("profiler tier is off: {t:?}"),
        }
    }
    assert_eq!(oracle_rows, 2, "DOALL + recurrence are provable");
    assert_eq!(gnn_rows, 1, "the indirect write must fall through to the GNN");
}

#[test]
fn starved_trace_degradation_survives_the_oracle_tier_unchanged() {
    let (m, f, i2v, model) = setup();
    let cfg = SampleConfig::default();
    let budget = FaultPlan::new(4).starved_step_budget();
    let base =
        Cascade::gnn_only().classify_module(&model, &m, f, &i2v, &cfg, Some(budget), None);
    let tiered =
        oracle_plus_gnn().classify_module(&model, &m, f, &i2v, &cfg, Some(budget), None);
    assert_eq!(base.len(), tiered.len());
    for (b, t) in base.iter().zip(&tiered) {
        if t.decided_by == DecidedBy::Oracle {
            // Tier 0 is static: a starved interpreter cannot degrade it.
            assert!(t.diagnostic.is_none(), "{t:?}");
            continue;
        }
        assert_ne!(b.source, PredictionSource::Multi, "starved trace must degrade: {b:?}");
        assert_eq!(b.prediction, t.prediction);
        assert_eq!(b.source, t.source);
        assert_eq!(b.diagnostic, t.diagnostic);
    }
}

fn corpus_samples() -> Vec<GraphSample> {
    let ds = build_corpus(&CorpusConfig {
        seeds: vec![4],
        opt_levels: vec![mvgnn::ir::transform::OptLevel::O0],
        per_class: Some(24),
        test_fraction: 0.5,
        suite: Some(Suite::PolyBench),
        inst2vec: Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 4 },
        sample: Default::default(),
        seed: 6,
        label_noise: 0.0,
        static_features: false,
    });
    ds.test.iter().map(|s| s.sample.clone()).collect()
}

#[test]
fn logits_surfacing_batch_is_bit_identical_to_the_checked_batch() {
    let samples = corpus_samples();
    let s0 = &samples[0];
    let model = MvGnn::new(MvGnnConfig::small(s0.node_dim, s0.aw_vocab));
    let refs: Vec<&GraphSample> = samples.iter().collect();
    let plain = model.predict_checked_batch_ws(&mut Workspace::new(), &refs);
    let (surfaced, logits) =
        model.predict_checked_logits_batch_ws(&mut Workspace::new(), &refs);
    assert_eq!(plain, surfaced, "surfacing logits must not move any verdict");
    let reference = model.logits_batch(&refs);
    assert_eq!(logits.len(), reference.len());
    let bits = |rows: &[Vec<f32>]| -> Vec<u32> {
        rows.iter().flatten().map(|x| x.to_bits()).collect()
    };
    assert_eq!(bits(&logits), bits(&reference), "fused logits rows must match bit-exact");
}

#[test]
fn workspace_reuse_across_chunks_is_bit_identical_to_fresh_workspaces() {
    let samples = corpus_samples();
    let s0 = &samples[0];
    let model = MvGnn::new(MvGnnConfig::small(s0.node_dim, s0.aw_vocab));
    let refs: Vec<&GraphSample> = samples.iter().collect();
    // The cascade reuses one workspace across every chunk of a module;
    // the historical path built a fresh one per chunk. The pool contract
    // (zero-filled exact-length acquires) makes the two identical.
    let mut shared = Workspace::new();
    let mut reused = Vec::new();
    for chunk in refs.chunks(5) {
        reused.extend(Cascade::gnn_batch(&model, &mut shared, chunk));
    }
    let mut fresh = Vec::new();
    for chunk in refs.chunks(5) {
        fresh.extend(Cascade::gnn_batch(&model, &mut Workspace::new(), chunk));
    }
    assert_eq!(reused, fresh, "workspace reuse must not move any verdict");
}
